examples/session_chair.ml: Dgmc Election Format List Net
