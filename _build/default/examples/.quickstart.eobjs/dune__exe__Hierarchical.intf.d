examples/hierarchical.mli:
