examples/session_chair.mli:
