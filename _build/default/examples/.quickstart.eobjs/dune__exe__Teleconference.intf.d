examples/teleconference.mli:
