examples/teleconference.ml: Dgmc Experiments Format List Mctree Net Sim Workload
