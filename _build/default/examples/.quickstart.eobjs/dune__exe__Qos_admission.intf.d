examples/qos_admission.mli:
