examples/quickstart.ml: Dgmc Format List Mctree Net Sim
