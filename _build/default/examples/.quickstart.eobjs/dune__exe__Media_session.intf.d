examples/media_session.mli:
