examples/media_session.ml: Dataplane Dgmc Format List Mctree Net Option Printf Sim
