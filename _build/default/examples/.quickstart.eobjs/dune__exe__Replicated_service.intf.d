examples/replicated_service.mli:
