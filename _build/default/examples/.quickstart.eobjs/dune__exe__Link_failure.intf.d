examples/link_failure.mli:
