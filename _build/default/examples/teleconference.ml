(* A full teleconference lifecycle on a 40-switch network: everyone dials
   in within a second (bursty arrivals), membership churns during the
   call, then the call drains.  Demonstrates the Session workload
   generator and per-phase signaling accounting.

     dune exec examples/teleconference.exe *)

let phase_report net mc label =
  let totals = Dgmc.Protocol.totals net in
  let per ev x = if ev = 0 then 0.0 else float_of_int x /. float_of_int ev in
  Format.printf
    "%-12s %3d events  %5.2f computations/event  %5.2f floodings/event  %s@."
    label totals.events
    (per totals.events totals.computations)
    (per totals.events totals.mc_floodings)
    (if Dgmc.Protocol.converged net mc then "converged" else "NOT CONVERGED");
  Dgmc.Protocol.reset_counters net

let () =
  let seed = 7 in
  let n = 40 in
  let graph = Experiments.Harness.graph_for ~seed ~n in
  let config = Dgmc.Config.atm_lan in
  let net = Dgmc.Protocol.create ~graph ~config () in
  let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 42 in
  let rng = Sim.Rng.create seed in

  Format.printf "teleconference on %d switches (%d links)@.@." n
    (Net.Graph.n_edges graph);

  let phases =
    Workload.Session.lifecycle rng ~n ~mc ~participants:12
      ~arrival_window:(Dgmc.Config.round_length config ~graph)
      ~churn_events:20
      ~churn_mean_gap:(20.0 *. Dgmc.Config.round_length config ~graph)
      ~departure_window:(Dgmc.Config.round_length config ~graph)
      ()
  in

  (* Phase 1: arrival burst. *)
  Workload.Events.apply_dgmc net phases.arrivals;
  Dgmc.Protocol.run net;
  (match Dgmc.Protocol.agreed_topology net mc with
  | Some tree ->
    Format.printf "call established: %d participants, tree cost %.2f@.@."
      (Mctree.Tree.Int_set.cardinal (Mctree.Tree.terminals tree))
      (Mctree.Tree.cost graph tree)
  | None -> ());
  phase_report net mc "arrivals";

  (* Phase 2: churn — people joining and dropping during the call. *)
  Workload.Events.apply_dgmc net phases.churn;
  Dgmc.Protocol.run net;
  phase_report net mc "churn";

  (* Phase 3: the call winds down. *)
  Workload.Events.apply_dgmc net phases.departures;
  Dgmc.Protocol.run net;
  phase_report net mc "departures";

  let survivors =
    List.filter
      (fun i -> Dgmc.Switch.members (Dgmc.Protocol.switch net i) mc <> None)
      (List.init n (fun i -> i))
  in
  Format.printf "@.MC state remaining after everyone left: %d switches@."
    (List.length survivors);
  assert (survivors = [])
