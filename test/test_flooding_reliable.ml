(* Tests for the reliable (ack + retransmit) flooding mode: delivery
   under heavy loss, exactly-once semantics, bounded retransmission,
   clean timeout against an unreachable neighbor, and counter
   comparability with the lossless hop-by-hop mode. *)

let check = Alcotest.check

(* A flooding instance under a fault plan; returns the instance, the
   engine, and the delivery log. *)
let make ?reliability ?transmit ?(mode = Lsr.Flooding.Reliable) graph ~t_hop =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let deliver ~switch lsa = log := (switch, Lsr.Lsa.id lsa) :: !log in
  let f =
    Lsr.Flooding.create ~engine ~graph ~t_hop ~mode ?reliability ?transmit
      ~deliver ()
  in
  (f, engine, log)

let faulty_transmit plan engine ~src ~dst ~base_delay =
  Faults.Plan.transmit plan ~src ~dst ~now:(Sim.Engine.now engine) ~base_delay

let test_all_delivered_under_loss () =
  let graph = Net.Topo_gen.waxman (Sim.Rng.create 5) ~n:15 ~target_degree:3.5 () in
  let spec =
    { Faults.Plan.spec_default with drop = 0.3; duplicate = 0.2; reorder = 0.2 }
  in
  let plan = Faults.Plan.create ~spec ~seed:11 () in
  let engine_ref = ref None in
  let transmit ~src ~dst ~base_delay =
    faulty_transmit plan (Option.get !engine_ref) ~src ~dst ~base_delay
  in
  let f, engine, log = make graph ~t_hop:1.0 ~transmit in
  engine_ref := Some engine;
  (* Several LSAs from several origins, overlapping in time. *)
  let ids = [ (0, 0); (7, 0); (3, 0); (0, 1); (11, 0) ] in
  List.iter
    (fun (origin, seq) ->
      ignore
        (Sim.Engine.schedule engine
           ~delay:(float_of_int (seq * 3))
           (fun () -> Lsr.Flooding.flood f (Lsr.Lsa.make ~origin ~seq ()))))
    ids;
  Sim.Engine.run engine;
  check Alcotest.bool "loss actually injected" true
    ((Faults.Plan.counters plan).Faults.Plan.dropped > 0);
  check Alcotest.bool "retransmissions happened" true
    (Lsr.Flooding.retransmissions f > 0);
  (* Every switch except the origin received every LSA, exactly once. *)
  let n = Net.Graph.n_nodes graph in
  List.iter
    (fun (origin, seq) ->
      for sw = 0 to n - 1 do
        let copies =
          List.length
            (List.filter (fun (s, id) -> s = sw && id = (origin, seq)) !log)
        in
        let expected = if sw = origin then 0 else 1 in
        check Alcotest.int
          (Printf.sprintf "switch %d, lsa (%d,%d)" sw origin seq)
          expected copies
      done)
    ids;
  check Alcotest.int "no transfer left pending" 0
    (Lsr.Flooding.pending_retransmits f);
  check Alcotest.int "no transfer abandoned" 0
    (Lsr.Flooding.deliveries_abandoned f)

let test_bounded_retransmissions () =
  (* Drop everything: the sender must give up after exactly max_retries
     retransmissions per (link, LSA) transfer — it must not retry
     forever (the engine would never quiesce). *)
  let graph = Net.Topo_gen.line 2 in
  let transmit ~src:_ ~dst:_ ~base_delay:_ = [] in
  let reliability = { Lsr.Flooding.default_reliability with max_retries = 3 } in
  let f, engine, log = make graph ~t_hop:1.0 ~transmit ~reliability in
  Lsr.Flooding.flood f (Lsr.Lsa.make ~origin:0 ~seq:0 ());
  Sim.Engine.run engine;
  check Alcotest.int "nothing delivered" 0 (List.length !log);
  check Alcotest.int "one first copy" 1 (Lsr.Flooding.messages_sent f);
  check Alcotest.int "exactly max_retries retransmissions" 3
    (Lsr.Flooding.retransmissions f);
  check Alcotest.int "transfer abandoned" 1
    (Lsr.Flooding.deliveries_abandoned f);
  check Alcotest.int "state aged out" 0 (Lsr.Flooding.pending_retransmits f)

let test_partitioned_switch_times_out () =
  (* Switch 3 hangs off a line; a fault plan blocks it permanently (the
     window outlives the whole retry schedule).  The rest of the network
     converges, the transfers toward 3 are abandoned, and the engine
     quiesces cleanly. *)
  let graph = Net.Topo_gen.line 4 in
  let plan = Faults.Plan.create ~seed:2 () in
  Faults.Plan.crash_switch plan ~switch:3 ~from_:0.0 ~until:1e12;
  let engine_ref = ref None in
  let transmit ~src ~dst ~base_delay =
    faulty_transmit plan (Option.get !engine_ref) ~src ~dst ~base_delay
  in
  let f, engine, log = make graph ~t_hop:1.0 ~transmit in
  engine_ref := Some engine;
  Lsr.Flooding.flood f (Lsr.Lsa.make ~origin:0 ~seq:0 ());
  Sim.Engine.run engine;
  let receivers = List.sort compare (List.map fst !log) in
  check Alcotest.(list int) "reachable switches delivered" [ 1; 2 ] receivers;
  check Alcotest.int "transfer to the dead switch abandoned" 1
    (Lsr.Flooding.deliveries_abandoned f);
  check Alcotest.int "retry state aged out" 0
    (Lsr.Flooding.pending_retransmits f);
  check Alcotest.int "full retry budget spent"
    Lsr.Flooding.default_reliability.max_retries
    (Lsr.Flooding.retransmissions f)

let test_exactly_once_under_duplication () =
  (* Duplicate aggressively, never drop: every data message arrives at
     least twice, yet deliver fires once per (switch, origin, seq). *)
  let graph = Net.Topo_gen.ring 8 in
  let spec = { Faults.Plan.spec_default with duplicate = 1.0 } in
  let plan = Faults.Plan.create ~spec ~seed:9 () in
  let engine_ref = ref None in
  let transmit ~src ~dst ~base_delay =
    faulty_transmit plan (Option.get !engine_ref) ~src ~dst ~base_delay
  in
  let f, engine, log = make graph ~t_hop:1.0 ~transmit in
  engine_ref := Some engine;
  Lsr.Flooding.flood f (Lsr.Lsa.make ~origin:0 ~seq:4 ());
  Lsr.Flooding.flood f (Lsr.Lsa.make ~origin:2 ~seq:0 ());
  Sim.Engine.run engine;
  check Alcotest.bool "duplicates injected" true
    ((Faults.Plan.counters plan).Faults.Plan.duplicated > 0);
  let sorted = List.sort compare !log in
  check Alcotest.bool "exactly once per (switch, lsa)" true
    (List.length sorted = List.length (List.sort_uniq compare sorted));
  check Alcotest.int "14 deliveries (7 switches x 2 LSAs)" 14
    (List.length sorted)

let test_lossless_reliable_matches_hop_by_hop () =
  (* Satellite: counter semantics.  Without faults, Reliable sends
     exactly Hop_by_hop's data messages; its cost is isolated in acks
     (one per received data copy) with zero retransmissions. *)
  let graph = Net.Topo_gen.waxman (Sim.Rng.create 3) ~n:12 ~target_degree:3.5 () in
  let run mode =
    let f, engine, log = make graph ~t_hop:1.0 ~mode in
    List.iter
      (fun origin -> Lsr.Flooding.flood f (Lsr.Lsa.make ~origin ~seq:0 ()))
      [ 0; 5; 9 ];
    Sim.Engine.run engine;
    (f, List.sort compare !log)
  in
  let hop, hop_log = run Lsr.Flooding.Hop_by_hop in
  let rel, rel_log = run Lsr.Flooding.Reliable in
  check Alcotest.bool "same deliveries" true (hop_log = rel_log);
  check Alcotest.int "messages_sent identical"
    (Lsr.Flooding.messages_sent hop)
    (Lsr.Flooding.messages_sent rel);
  check Alcotest.int "hop-by-hop sends no acks" 0 (Lsr.Flooding.acks_sent hop);
  (* Every received data copy is acked, and without loss there is
     exactly one copy per data message. *)
  check Alcotest.int "one ack per data message"
    (Lsr.Flooding.messages_sent rel)
    (Lsr.Flooding.acks_sent rel);
  check Alcotest.int "no retransmissions without loss" 0
    (Lsr.Flooding.retransmissions rel);
  check Alcotest.int "nothing abandoned" 0
    (Lsr.Flooding.deliveries_abandoned rel)

let test_giveup_once_crash_window_closes_mid_backoff () =
  (* Regression: a unicast transfer whose destination is crashed for the
     whole retry schedule must fire on_giveup exactly once — including
     when the crash window closes between two backoff attempts (the
     give-up path used to be able to race a late retransmit timer). *)
  let graph = Net.Topo_gen.line 2 in
  let plan = Faults.Plan.create ~seed:4 () in
  (* rto=4, retries=3: attempts at 0, 4, 12, 28 hop-times; the window
     closes at 20.0, mid-way through the final backoff wait. *)
  Faults.Plan.crash_switch plan ~switch:1 ~from_:0.0 ~until:20.0;
  let engine_ref = ref None in
  let transmit ~src ~dst ~base_delay =
    faulty_transmit plan (Option.get !engine_ref) ~src ~dst ~base_delay
  in
  let reliability = { Lsr.Flooding.default_reliability with max_retries = 3 } in
  let f, engine, log = make graph ~t_hop:1.0 ~transmit ~reliability in
  engine_ref := Some engine;
  let giveups = ref 0 in
  Lsr.Flooding.send f ~src:0 ~dst:1
    ~on_giveup:(fun () -> incr giveups)
    (Lsr.Lsa.make ~origin:0 ~seq:0 ());
  Sim.Engine.run engine;
  (* The final attempt at t=28 lands after the window closes, so the
     transfer actually completes — and the give-up must then never fire. *)
  check Alcotest.int "delivered after the window closed" 1 (List.length !log);
  check Alcotest.int "no giveup for a completed transfer" 0 !giveups;
  check Alcotest.int "state aged out" 0 (Lsr.Flooding.pending_retransmits f);
  (* Same schedule against a window outliving every attempt: exactly one
     give-up, no double-fire from the abandoned timer. *)
  let plan2 = Faults.Plan.create ~seed:4 () in
  Faults.Plan.crash_switch plan2 ~switch:1 ~from_:0.0 ~until:1e12;
  let engine_ref2 = ref None in
  let transmit2 ~src ~dst ~base_delay =
    faulty_transmit plan2 (Option.get !engine_ref2) ~src ~dst ~base_delay
  in
  let f2, engine2, log2 = make graph ~t_hop:1.0 ~transmit:transmit2 ~reliability in
  engine_ref2 := Some engine2;
  let giveups2 = ref 0 in
  Lsr.Flooding.send f2 ~src:0 ~dst:1
    ~on_giveup:(fun () -> incr giveups2)
    (Lsr.Lsa.make ~origin:0 ~seq:0 ());
  Sim.Engine.run engine2;
  check Alcotest.int "nothing delivered" 0 (List.length !log2);
  check Alcotest.int "on_giveup fired exactly once" 1 !giveups2;
  check Alcotest.int "abandoned counted once" 1
    (Lsr.Flooding.deliveries_abandoned f2);
  check Alcotest.int "state aged out" 0 (Lsr.Flooding.pending_retransmits f2)

let test_abandon_link_cancels_pending_once () =
  (* The health layer's dead-neighbor hook: abandon_link cancels the
     pending transfer immediately, fires its on_giveup exactly once, and
     a second call (or the stale retransmit timer) finds nothing. *)
  let graph = Net.Topo_gen.line 2 in
  let transmit ~src:_ ~dst:_ ~base_delay:_ = [] in
  let f, engine, log = make graph ~t_hop:1.0 ~transmit in
  let giveups = ref 0 in
  Lsr.Flooding.send f ~src:0 ~dst:1
    ~on_giveup:(fun () -> incr giveups)
    (Lsr.Lsa.make ~origin:0 ~seq:0 ());
  (* Let the first transmission (and one backoff) happen, then declare
     the neighbor dead mid-flight. *)
  ignore
    (Sim.Engine.schedule engine ~delay:5.0 (fun () ->
         check Alcotest.int "transfer pending before abandon" 1
           (Lsr.Flooding.pending_retransmits f);
         check Alcotest.int "one transfer cancelled" 1
           (Lsr.Flooding.abandon_link f ~src:0 ~dst:1);
         check Alcotest.int "giveup fired synchronously" 1 !giveups;
         check Alcotest.int "second abandon finds nothing" 0
           (Lsr.Flooding.abandon_link f ~src:0 ~dst:1)));
  Sim.Engine.run engine;
  check Alcotest.int "nothing delivered" 0 (List.length !log);
  check Alcotest.int "giveup still exactly once after the run" 1 !giveups;
  check Alcotest.int "cancelled transfer counted abandoned" 1
    (Lsr.Flooding.deliveries_abandoned f);
  check Alcotest.int "no pending state left" 0
    (Lsr.Flooding.pending_retransmits f)

let test_adaptive_rtt_estimate_converges () =
  (* Adaptive reliable mode: on a clean link the Jacobson/Karn estimate
     converges to the actual round trip and no spurious retransmission
     fires. *)
  let graph = Net.Topo_gen.line 2 in
  let reliability =
    { Lsr.Flooding.default_reliability with adaptive = true }
  in
  let f, engine, _log = make graph ~t_hop:1.0 ~reliability in
  check Alcotest.bool "no estimate before the first sample" true
    (Lsr.Flooding.rtt_estimate f ~src:0 ~dst:1 = None);
  for seq = 0 to 7 do
    ignore
      (Sim.Engine.schedule engine
         ~delay:(10.0 *. float_of_int seq)
         (fun () ->
           Lsr.Flooding.send f ~src:0 ~dst:1 (Lsr.Lsa.make ~origin:0 ~seq ())))
  done;
  Sim.Engine.run engine;
  (match Lsr.Flooding.rtt_estimate f ~src:0 ~dst:1 with
  | None -> Alcotest.fail "no RTT estimate after eight clean transfers"
  | Some (srtt, rttvar) ->
    (* Data hop + ack hop = 2 hop-times exactly on a fault-free line. *)
    check Alcotest.bool "srtt converged to the round trip" true
      (Float.abs (srtt -. 2.0) < 0.01);
    check Alcotest.bool "rttvar collapsed on a jitter-free link" true
      (rttvar < 1.0));
  check Alcotest.int "no spurious retransmission" 0
    (Lsr.Flooding.retransmissions f)

let test_adaptive_karn_rule () =
  (* Karn's rule: a transfer that needed a retransmission contributes no
     RTT sample (its ack is ambiguous). *)
  let graph = Net.Topo_gen.line 2 in
  let first = ref true in
  let transmit ~src:_ ~dst ~base_delay =
    (* Drop the very first data copy (towards 1); everything after —
       including acks (towards 0) — is clean. *)
    if !first && dst = 1 then begin
      first := false;
      []
    end
    else [ base_delay ]
  in
  let reliability =
    { Lsr.Flooding.default_reliability with adaptive = true }
  in
  let f, engine, log = make graph ~t_hop:1.0 ~transmit ~reliability in
  Lsr.Flooding.send f ~src:0 ~dst:1 (Lsr.Lsa.make ~origin:0 ~seq:0 ());
  Sim.Engine.run engine;
  check Alcotest.int "delivered on the retransmission" 1 (List.length !log);
  check Alcotest.int "one retransmission" 1 (Lsr.Flooding.retransmissions f);
  check Alcotest.bool "no sample from a retransmitted transfer" true
    (Lsr.Flooding.rtt_estimate f ~src:0 ~dst:1 = None)

let () =
  Alcotest.run "flooding_reliable"
    [
      ( "reliable",
        [
          Alcotest.test_case "every LSA delivered under 30% loss" `Quick
            test_all_delivered_under_loss;
          Alcotest.test_case "retransmissions are bounded" `Quick
            test_bounded_retransmissions;
          Alcotest.test_case "permanently blocked switch times out cleanly"
            `Quick test_partitioned_switch_times_out;
          Alcotest.test_case "exactly-once deliver under duplication" `Quick
            test_exactly_once_under_duplication;
          Alcotest.test_case "lossless reliable = hop-by-hop modulo acks"
            `Quick test_lossless_reliable_matches_hop_by_hop;
          Alcotest.test_case "giveup fires once when a crash window closes \
                              mid-backoff"
            `Quick test_giveup_once_crash_window_closes_mid_backoff;
          Alcotest.test_case "abandon_link cancels pending state exactly once"
            `Quick test_abandon_link_cancels_pending_once;
          Alcotest.test_case "adaptive RTO estimate converges on a clean link"
            `Quick test_adaptive_rtt_estimate_converges;
          Alcotest.test_case "Karn's rule: no sample from retransmitted \
                              transfers"
            `Quick test_adaptive_karn_rule;
        ] );
    ]
