(* Analyzer fixture: iteration-order.  Parsed by dgmc_analyze's own
   tests, never compiled. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 8

let dump buf = Hashtbl.iter (fun k v -> Buffer.add_string buf (string_of_int (k + v))) table

let keys_sorted () =
  Hashtbl.fold (fun k _ acc -> k :: acc) table [] |> List.sort Int.compare

let sorted_apply () =
  List.sort Int.compare @@ Hashtbl.fold (fun k _ acc -> k :: acc) table []

(* dgmc-analyze: allow iteration-order — integer sum is order-insensitive *)
let total () = Hashtbl.fold (fun _ v acc -> acc + v) table 0
