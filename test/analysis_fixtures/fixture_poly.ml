(* Analyzer fixture: poly-compare.  Parsed by dgmc_analyze's own tests,
   never compiled. *)

type pair = { a : int; b : int }

let sort_any ps = List.sort compare ps

let sort_stdlib ps = List.sort Stdlib.compare ps

let same_tuple x y = (x, 0) = (y, 0)

(* dgmc-analyze: allow poly-compare — fixture: monomorphic int list only *)
let sort_allowed xs = List.sort compare xs

let sort_ints xs = List.sort Int.compare xs

let compare p q = Int.compare p.a q.a

let sort_local ps = List.sort compare ps
