(* Analyzer fixture: suppression hygiene.  The first comment is
   malformed (no rationale), the second matches no finding. *)

(* dgmc-analyze: allow nondet-source *)
let id x = x

(* dgmc-analyze: allow poly-compare — nothing on the next line triggers it *)
let twice x = x * 2
