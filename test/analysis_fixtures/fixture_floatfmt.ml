(* Analyzer fixture: float-format.  Parsed by dgmc_analyze's own tests,
   never compiled. *)

let schema x = Printf.sprintf "{\"x\": %f}" x

let round_trip x = Printf.sprintf "%.17g" x

let hex x = Printf.sprintf "%h" x

let ints n = Printf.sprintf "%d of %s" n "them"

(* dgmc-analyze: allow float-format — fixture: human-facing echo *)
let echo x = Printf.printf "value: %g\n" x
