(* Analyzer fixture: a file with no findings at all. *)

let double xs = List.map (fun x -> x * 2) xs

let sorted xs = List.sort Int.compare xs

let render x = Printf.sprintf "%.17g" x

let pick rng n = Sim.Rng.int rng n
