(* Analyzer fixture: domain-unsafe-capture.  Parsed by dgmc_analyze's
   own tests, never compiled. *)

let hits = ref 0

let tally pool xs = Runner.Pool.map pool (fun x -> incr hits; x) xs

let bump x = incr hits; x

let indirect pool xs = Runner.Pool.map pool bump xs

let safe pool xs =
  let local = ref 0 in
  Runner.Pool.map pool (fun x -> incr local; x) xs

let slot = Domain.DLS.new_key (fun () -> 0)

let guarded pool xs =
  Runner.Pool.map pool (fun x -> ignore (Domain.DLS.get slot); x) xs

(* dgmc-analyze: allow domain-unsafe-capture — fixture: single-domain pool *)
let allowed pool xs = Runner.Pool.map pool (fun x -> incr hits; x) xs
