(* Analyzer fixture: nondet-source.  Parsed by dgmc_analyze's own tests,
   never compiled. *)

let roll () = Random.int 6

let now () = Unix.gettimeofday ()

let cpu () = Sys.time ()

let bucket x = Hashtbl.hash x mod 16

(* dgmc-analyze: allow nondet-source — fixture: wall-clock timing of a bench *)
let timed () = Unix.gettimeofday ()

let clean rng = Sim.Rng.int rng 6

let also_clean st = Random.State.int st 6
