(* lib/analysis end-to-end: the rule engine on the fixture corpus, the
   suppression and baseline machinery, and the JSON renderings.

   The corpus in analysis_fixtures/ is parsed by the analyzer but never
   compiled (data_only_dirs): each file exercises one rule with positive,
   suppressed, and clean sites, so the expected findings below are exact
   line lists, not counts. *)

module Diag = Analysis.Diag
module Scan = Analysis.Scan
module Rules = Analysis.Rules
module Suppress = Analysis.Suppress
module Baseline = Analysis.Baseline
module Driver = Analysis.Driver

(* dune runs tests from the stanza's directory, but be tolerant of a
   project-root cwd (`dune exec test/test_analysis.exe`). *)
let fixtures_dir =
  if Sys.file_exists "analysis_fixtures" then "analysis_fixtures"
  else Filename.concat "test" "analysis_fixtures"

let fixture name = Filename.concat fixtures_dir name

(* Raw findings (before suppression / baseline) for one fixture. *)
let raw_diags name =
  let file = Scan.load (fixture name) in
  let env = Scan.env_of [ file ] in
  Scan.check env ~enabled:(fun _ -> true) file

let lines_of rule diags =
  List.filter_map
    (fun (d : Diag.t) -> if String.equal d.rule rule then Some d.line else None)
    diags

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.equal (String.sub s i m) sub || at (i + 1)) in
  m = 0 || at 0

(* ------------------------------------------------------------------ *)
(* One test per rule: the fixture's positive sites (including the
   suppressed one — suppression is applied by the driver, not the
   scanner) and nothing else. *)

let check_rule name rule expected_lines () =
  let diags = raw_diags name in
  List.iter
    (fun (d : Diag.t) -> Alcotest.(check string) (name ^ " rule") rule d.rule)
    diags;
  Alcotest.(check (list int)) (name ^ " lines") expected_lines (lines_of rule diags)

let test_clean_fixture () =
  Alcotest.(check int) "fixture_clean.ml has no findings" 0
    (List.length (raw_diags "fixture_clean.ml"))

let test_parse_error () =
  let path = Filename.temp_file "dgmc_analyze_fixture" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "let = 3\n";
      close_out oc;
      let file = Scan.load path in
      match file.Scan.parse_error with
      | None -> Alcotest.fail "expected a parse error"
      | Some d ->
        Alcotest.(check string) "pseudo-rule" (Rules.name Rules.Parse_error)
          d.Diag.rule)

let test_rules_registry () =
  List.iter
    (fun r ->
      match Rules.of_name (Rules.name r) with
      | Some r' ->
        Alcotest.(check string) "of_name round-trip" (Rules.name r)
          (Rules.name r')
      | None -> Alcotest.failf "of_name failed for %s" (Rules.name r))
    Rules.all;
  Alcotest.(check (option pass)) "unknown rule rejected" None
    (Rules.of_name "no-such-rule")

(* ------------------------------------------------------------------ *)
(* Suppression scanner semantics: span + one following line, per rule,
   used/unused accounting. *)

let test_suppress_scan () =
  let src =
    "let x = 1\n\
     (* dgmc-analyze: allow nondet-source, poly-compare -- unit test *)\n\
     let y = 2\n\
     let z = 3\n"
  in
  let sc = Suppress.scan src in
  (match sc.Suppress.suppressions with
  | [ s ] ->
    Alcotest.(check (list string))
      "rules" [ "nondet-source"; "poly-compare" ]
      (List.sort String.compare s.Suppress.rules)
  | l -> Alcotest.failf "expected 1 suppression, got %d" (List.length l));
  Alcotest.(check int) "unused before any match" 1
    (List.length (Suppress.unused sc));
  Alcotest.(check bool) "covers its own line" true
    (Suppress.covers sc ~rule:"poly-compare" ~line:2);
  Alcotest.(check bool) "covers the next line" true
    (Suppress.covers sc ~rule:"nondet-source" ~line:3);
  Alcotest.(check bool) "does not reach two lines down" false
    (Suppress.covers sc ~rule:"nondet-source" ~line:4);
  Alcotest.(check bool) "other rules not covered" false
    (Suppress.covers sc ~rule:"float-format" ~line:3);
  Alcotest.(check int) "used after a match" 0 (List.length (Suppress.unused sc))

let test_suppress_malformed () =
  let sc = Suppress.scan "(* dgmc-analyze: allow nondet-source *)\nlet x = 1\n" in
  Alcotest.(check int) "no rationale means no suppression" 0
    (List.length sc.Suppress.suppressions);
  Alcotest.(check int) "but one malformed report" 1
    (List.length sc.Suppress.malformed)

(* ------------------------------------------------------------------ *)
(* Driver over the whole corpus: suppression counts, unused reporting,
   and the (file, rule) count baseline. *)

(* Raw sites across the corpus: 5 nondet + 2 iteration + 4 poly +
   2 float + 3 capture = 16, of which one per rule fixture (5) carries a
   suppression; fixture_suppress.ml adds one suppression-syntax warning
   and one deliberately unused suppression. *)
let corpus_new = 12
let corpus_suppressed = 5
let corpus_files = 7

let run_corpus ?(baseline = Baseline.empty) () =
  Driver.run ~baseline [ fixtures_dir ]

let test_driver_corpus () =
  let r = run_corpus () in
  Alcotest.(check int) "files scanned" corpus_files r.Driver.files_scanned;
  Alcotest.(check int) "suppressed" corpus_suppressed r.Driver.suppressed;
  Alcotest.(check int) "new findings" corpus_new (Driver.new_count r);
  match r.Driver.unused_suppressions with
  | [ (file, s) ] ->
    Alcotest.(check string) "unused in" (fixture "fixture_suppress.ml") file;
    Alcotest.(check (list string)) "unused rules" [ "poly-compare" ]
      s.Suppress.rules
  | l -> Alcotest.failf "expected 1 unused suppression, got %d" (List.length l)

let test_gather_skips_fixtures () =
  (* The corpus must never leak into a normal repo-wide run. *)
  let files = Driver.gather_files [ "." ] in
  Alcotest.(check bool) "found some sources" true (files <> []);
  List.iter
    (fun f ->
      if contains_sub f fixtures_dir then
        Alcotest.failf "gather_files leaked fixture %s" f)
    files

let test_rule_toggle () =
  let enabled r = match r with Rules.Nondet_source -> true | _ -> false in
  let r = Driver.run ~enabled ~baseline:Baseline.empty [ fixtures_dir ] in
  List.iter
    (fun ((d : Diag.t), _) ->
      if
        not
          (String.equal d.rule (Rules.name Rules.Nondet_source)
          || String.equal d.rule "suppression-syntax")
      then Alcotest.failf "disabled rule still fired: %s" d.rule)
    r.Driver.diags

let test_baseline_roundtrip () =
  let r = run_corpus () in
  let diags = List.map fst r.Driver.diags in
  let b = Baseline.of_diags diags in
  (match Sim.Json.parse (Baseline.to_string b) with
  | Error e -> Alcotest.failf "baseline text does not parse: %s" e
  | Ok j -> (
    match Baseline.of_json j with
    | Error e -> Alcotest.failf "baseline decode: %s" e
    | Ok b' ->
      Alcotest.(check int) "entries survive the round trip" (List.length b)
        (List.length b')));
  Alcotest.(check int) "count sees the capture findings" 2
    (Baseline.count b
       ~file:(fixture "fixture_capture.ml")
       ~rule:(Rules.name Rules.Domain_unsafe_capture));
  let r2 = run_corpus ~baseline:b () in
  Alcotest.(check int) "clean against its own baseline" 0 (Driver.new_count r2);
  Alcotest.(check int) "nothing disappeared" (List.length diags)
    (List.length r2.Driver.diags)

let test_json_report () =
  let r = run_corpus () in
  match Sim.Json.parse (Driver.render_json r) with
  | Error e -> Alcotest.failf "report does not parse: %s" e
  | Ok j ->
    let str k = Option.bind (Sim.Json.member k j) Sim.Json.to_string in
    let num k = Option.bind (Sim.Json.member k j) Sim.Json.to_int in
    Alcotest.(check (option string)) "schema" (Some "dgmc-analyze/1")
      (str "schema");
    Alcotest.(check (option string)) "kind" (Some "report") (str "kind");
    Alcotest.(check (option int)) "new" (Some corpus_new) (num "new");
    Alcotest.(check (option int)) "suppressed" (Some corpus_suppressed)
      (num "suppressed");
    (match Option.bind (Sim.Json.member "findings" j) Sim.Json.to_list with
    | None -> Alcotest.fail "findings array missing"
    | Some l ->
      Alcotest.(check int) "one record per finding"
        (List.length r.Driver.diags) (List.length l);
      List.iter
        (fun f ->
          let field k = Option.bind (Sim.Json.member k f) Sim.Json.to_string in
          (match field "rule" with
          | Some _ -> ()
          | None -> Alcotest.fail "record without rule");
          (match field "status" with
          | Some "new" | Some "baseline" -> ()
          | _ -> Alcotest.fail "record without a valid status");
          match Option.bind (Sim.Json.member "line" f) Sim.Json.to_int with
          | Some n when n >= 0 -> ()
          | _ -> Alcotest.fail "record without a line")
        l)

(* ------------------------------------------------------------------ *)
(* Self-check: the committed baseline still covers the real tree.  Runs
   from the repo root when it is reachable from the test's cwd (dune
   executes tests under _build); skipped otherwise. *)

let find_repo_root () =
  let rec up dir =
    let has f = Sys.file_exists (Filename.concat dir f) in
    if
      (not (contains_sub dir "_build"))
      && has "dgmc-analyze-baseline.json"
      && has "dune-project" && has "lib"
    then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
  in
  up (Sys.getcwd ())

let test_baseline_self_check () =
  match find_repo_root () with
  | None -> () (* source tree not reachable — nothing to check *)
  | Some root ->
    let cwd = Sys.getcwd () in
    Fun.protect
      ~finally:(fun () -> Sys.chdir cwd)
      (fun () ->
        Sys.chdir root;
        match Baseline.load "dgmc-analyze-baseline.json" with
        | Error e -> Alcotest.failf "committed baseline: %s" e
        | Ok b ->
          let r = Driver.run ~baseline:b [ "lib" ] in
          Alcotest.(check int) "lib/ is analyzer-clean vs the baseline" 0
            (Driver.new_count r))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dgmc-analysis"
    [
      ( "rules",
        [
          Alcotest.test_case "nondet-source sites" `Quick
            (check_rule "fixture_nondet.ml" "nondet-source" [ 4; 6; 8; 10; 13 ]);
          Alcotest.test_case "iteration-order sites" `Quick
            (check_rule "fixture_iteration.ml" "iteration-order" [ 6; 15 ]);
          Alcotest.test_case "poly-compare sites" `Quick
            (check_rule "fixture_poly.ml" "poly-compare" [ 6; 8; 10; 13 ]);
          Alcotest.test_case "float-format sites" `Quick
            (check_rule "fixture_floatfmt.ml" "float-format" [ 4; 13 ]);
          Alcotest.test_case "domain-unsafe-capture sites" `Quick
            (check_rule "fixture_capture.ml" "domain-unsafe-capture" [ 6; 10; 22 ]);
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
          Alcotest.test_case "parse-error pseudo-rule" `Quick test_parse_error;
          Alcotest.test_case "registry name round-trip" `Quick
            test_rules_registry;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "scan, covers, unused" `Quick test_suppress_scan;
          Alcotest.test_case "malformed comment" `Quick test_suppress_malformed;
        ] );
      ( "driver",
        [
          Alcotest.test_case "corpus accounting" `Quick test_driver_corpus;
          Alcotest.test_case "gather skips the corpus" `Quick
            test_gather_skips_fixtures;
          Alcotest.test_case "rule toggling" `Quick test_rule_toggle;
          Alcotest.test_case "baseline round trip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "json report shape" `Quick test_json_report;
          Alcotest.test_case "committed baseline self-check" `Quick
            test_baseline_self_check;
        ] );
    ]
