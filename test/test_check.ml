(* The D-GMC checker suite: model checker, runtime monitor, linter.

   The exploration tests are the heart: they drive real Switch.t
   instances through EVERY causally-possible LSA delivery order of a
   race and check the invariant catalogue at each state — a much
   stronger guarantee than the single schedule a simulation run picks.
   The broken-variant test proves the checker has teeth: disabling
   stale-proposal withdrawal (the paper's central mechanism) must
   produce a counterexample. *)

let mc1 = Dgmc.Mc_id.make Symmetric 1

let join switch = Check.Harness.Join { switch; mc = mc1; role = Dgmc.Member.Both }

let base_scenario ?(config = Dgmc.Config.atm_lan) ~setup ~race () =
  { Check.Explore.graph = Net.Topo_gen.ring 4; config; setup; race }

(* --- exhaustive exploration of the correct protocol --- *)

let test_two_concurrent_joins () =
  let scenario = base_scenario ~setup:[] ~race:[ join 0; join 2 ] () in
  let o = Check.Explore.run scenario in
  Format.printf "two-joins: %a@." Check.Explore.pp_outcome o;
  (match o.violation with
  | Some v ->
    Alcotest.failf "unexpected violation: %s\ntrace:\n%s" v.message
      (String.concat "\n" v.trace)
  | None -> ());
  Alcotest.(check bool) "exploration complete" true o.complete;
  Alcotest.(check bool) "reached terminal states" true (o.terminals > 0);
  Alcotest.(check bool) "exploration covers many interleavings" true
    (o.states > 10)

let test_join_vs_link_failure () =
  (* Settle two members first, find a link their agreed tree uses, then
     race a third join against that link's failure. *)
  let graph = Net.Topo_gen.ring 4 in
  let probe =
    Check.Harness.create ~graph ~config:Dgmc.Config.atm_lan ()
  in
  Check.Harness.inject probe (join 0);
  Check.Harness.inject probe (join 2);
  Check.Harness.settle probe;
  let tree =
    match Dgmc.Switch.topology (Check.Harness.switches probe).(0) mc1 with
    | Some t -> t
    | None -> Alcotest.fail "no settled topology to fail a link of"
  in
  let u, v =
    match Mctree.Tree.edges tree with
    | e :: _ -> e
    | [] -> Alcotest.fail "settled topology has no edges"
  in
  let scenario =
    base_scenario
      ~setup:[ join 0; join 2 ]
      ~race:[ join 1; Check.Harness.Link_down (u, v) ]
      ()
  in
  let o = Check.Explore.run scenario in
  Format.printf "join-vs-linkdown (%d,%d): %a@." u v Check.Explore.pp_outcome o;
  (match o.violation with
  | Some v ->
    Alcotest.failf "unexpected violation: %s\ntrace:\n%s" v.message
      (String.concat "\n" v.trace)
  | None -> ());
  Alcotest.(check bool) "exploration complete" true o.complete;
  Alcotest.(check bool) "reached terminal states" true (o.terminals > 0)

(* --- the checker catches a broken protocol variant --- *)

let test_broken_variant_caught () =
  (* Disable Figure 5's flag-on-stale-stamp step: when concurrent events
     collide, no switch any longer realises its proposal was computed in
     ignorance, so the network settles into permanent disagreement. *)
  let config = { Dgmc.Config.atm_lan with flag_stale_senders = false } in
  let o =
    Check.Explore.run (base_scenario ~config ~setup:[] ~race:[ join 0; join 2 ] ())
  in
  match o.violation with
  | None ->
    Alcotest.fail
      "disabling the stale-sender recompute flag was not caught by the checker"
  | Some v ->
    (* The acceptance criterion: a minimal counterexample, printed. *)
    Format.printf
      "broken variant caught (no recompute flag on stale senders):@.%s@.\
       minimal trace (%d steps):@."
      v.message (List.length v.trace);
    List.iteri (fun i d -> Format.printf "  %2d. %s@." (i + 1) d) v.trace;
    Alcotest.(check bool) "counterexample has a trace" true (v.trace <> [])

let test_no_withdrawal_self_heals () =
  (* The other fault knob: skipping Figure 4's stale-proposal withdrawal
     floods proposals whose basis is already outdated.  The exhaustive
     search proves this implementation ABSORBS that fault on this
     configuration: acceptance is gated on [stamp >= E], so a stale
     proposal is rejected wherever it could mislead, and its stale stamp
     arms the receiver's recompute flag.  A genuinely useful
     model-checking result — and the reason the checker must also carry
     a variant it does catch (above). *)
  let config =
    { Dgmc.Config.atm_lan with withdraw_stale_proposals = false }
  in
  let o =
    Check.Explore.run (base_scenario ~config ~setup:[] ~race:[ join 0; join 2 ] ())
  in
  Format.printf "no-withdrawal (2 joins): %a@." Check.Explore.pp_outcome o;
  (match o.violation with
  | Some v ->
    Alcotest.failf
      "expected self-healing, got: %s\ntrace:\n%s" v.message
      (String.concat "\n" v.trace)
  | None -> ());
  Alcotest.(check bool) "exploration complete" true o.complete

(* --- crash-recovery resynchronisation, exhaustively --- *)

let test_crash_recover_interleavings () =
  (* The acceptance scenario for the RESYNCING extension: on a 4-ring
     with members settled at 0 and 2, switch 1 suffers a forwarding
     outage that swallows the flood of a concurrent join at 3, then
     recovers.  Every interleaving of the recovery exchange (summaries,
     deltas, deferred replays, the session deadline) against the live
     join's floods and computations must end in network-wide agreement —
     exactly what the fuzzer's crash seeds (1113 et al.) sample one
     schedule of. *)
  let scenario =
    base_scenario
      ~setup:[ join 0; join 2 ]
      ~race:[ Check.Harness.Crash 1; join 3; Check.Harness.Recover 1 ]
      ()
  in
  let o = Check.Explore.run scenario in
  Format.printf "crash-recover vs join: %a@." Check.Explore.pp_outcome o;
  (match o.violation with
  | Some v ->
    Alcotest.failf "unexpected violation: %s\ntrace:\n%s" v.message
      (String.concat "\n" v.trace)
  | None -> ());
  Alcotest.(check bool) "exploration complete" true o.complete;
  Alcotest.(check bool) "reached terminal states" true (o.terminals > 0);
  Alcotest.(check bool) "exploration covers many interleavings" true
    (o.states > 10)

let test_crash_overlapping_crash () =
  (* Two overlapping outages: when 1 recovers, its neighbor 2 is still
     down, so one summary resolves to a synchronous transport giveup and
     the quorum must be met by switch 0 alone; 2 then recovers into a
     network where 1's own exchange may still be in flight. *)
  let scenario =
    base_scenario
      ~setup:[ join 0; join 2 ]
      ~race:
        [
          Check.Harness.Crash 1;
          Check.Harness.Crash 2;
          join 3;
          Check.Harness.Recover 1;
          Check.Harness.Recover 2;
        ]
      ()
  in
  let o = Check.Explore.run scenario in
  Format.printf "overlapping crashes: %a@." Check.Explore.pp_outcome o;
  (match o.violation with
  | Some v ->
    Alcotest.failf "unexpected violation: %s\ntrace:\n%s" v.message
      (String.concat "\n" v.trace)
  | None -> ());
  Alcotest.(check bool) "exploration complete" true o.complete;
  Alcotest.(check bool) "reached terminal states" true (o.terminals > 0)

(* --- resynchronisation message codec --- *)

let tree_of_fp fp =
  match Mctree.Tree.of_fingerprint fp with
  | Some t -> t
  | None -> Alcotest.failf "bad tree fingerprint %S" fp

let sample_summary =
  Dgmc.Resync.Summary
    {
      session = 3;
      origin = 1;
      links =
        [
          { Lsr.Lsdb.u = 0; v = 1; up = false; version = 2 };
          { Lsr.Lsdb.u = 1; v = 2; up = true; version = 5 };
        ];
      mcs =
        [
          {
            Dgmc.Resync.sum_mc = mc1;
            sum_r = Dgmc.Timestamp.of_array [| 2; 0; 1; 0 |];
            sum_e = Dgmc.Timestamp.of_array [| 2; 0; 1; 0 |];
            sum_c = Dgmc.Timestamp.of_array [| 1; 0; 1; 0 |];
            sum_tree_fp = "T{0-1,1-2|0,2}";
          };
          {
            Dgmc.Resync.sum_mc = Dgmc.Mc_id.make Receiver_only 7;
            sum_r = Dgmc.Timestamp.of_array [| 0; 0; 0; 0 |];
            sum_e = Dgmc.Timestamp.of_array [| 0; 1; 0; 0 |];
            sum_c = Dgmc.Timestamp.of_array [| 0; 0; 0; 0 |];
            sum_tree_fp = "T{|}";
          };
        ];
    }

let sample_delta =
  Dgmc.Resync.Delta
    {
      session = 3;
      origin = 2;
      links = [ { Lsr.Lsdb.u = 2; v = 3; up = true; version = 4 } ];
      mcs =
        [
          {
            Dgmc.Resync.exp_mc = mc1;
            exp_r = Dgmc.Timestamp.of_array [| 2; 0; 2; 0 |];
            exp_e = Dgmc.Timestamp.of_array [| 2; 0; 2; 0 |];
            exp_c = Dgmc.Timestamp.of_array [| 2; 0; 2; 0 |];
            exp_members =
              Dgmc.Member.of_list
                [ (0, Dgmc.Member.Both); (2, Dgmc.Member.Receiver) ];
            exp_membership_seen = [| 2; 0; 2; 0 |];
            exp_topology = tree_of_fp "T{0-1,1-2|0,2}";
          };
          (* A tombstone export: accounting survives, no members/tree. *)
          {
            Dgmc.Resync.exp_mc = Dgmc.Mc_id.make Asymmetric 9;
            exp_r = Dgmc.Timestamp.of_array [| 0; 2; 0; 0 |];
            exp_e = Dgmc.Timestamp.of_array [| 0; 2; 0; 0 |];
            exp_c = Dgmc.Timestamp.of_array [| 0; 0; 0; 0 |];
            exp_members = Dgmc.Member.empty;
            exp_membership_seen = [| 0; 2; 0; 0 |];
            exp_topology = Mctree.Tree.empty;
          };
        ];
    }

let test_resync_codec_round_trip () =
  List.iter
    (fun msg ->
      match Dgmc.Resync.of_string (Dgmc.Resync.to_string msg) with
      | Ok decoded ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip (session %d, origin %d)"
             (Dgmc.Resync.session msg) (Dgmc.Resync.origin msg))
          true
          (Dgmc.Resync.equal msg decoded)
      | Error reason -> Alcotest.failf "decode failed: %s" reason)
    [ sample_summary; sample_delta ]

let test_resync_codec_rejects_malformed () =
  List.iter
    (fun text ->
      match Dgmc.Resync.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" text)
    [
      "";
      "hello 1 2";
      "summary 1";
      "summary 1 2\nlink 0 1 sideways 3";
      "summary 1 2\nmc symmetric x 1 1 1 T{|}";
      "delta 1 2\nexport symmetric 1 1,0 1,0 1,0 0,0 0:captain T{|}";
      "delta 1 2\nexport symmetric 1 1,0 1,0 1,0 0,0 - T{0-1|";
    ]

let test_tree_fingerprint_matches_check () =
  (* Mctree.Tree.fingerprint (the wire form) and Check.Fingerprint.tree
     (the model checker's state-hash form) must never drift apart: resync
     summaries compare trees by the former, exploration dedups states by
     the latter. *)
  List.iter
    (fun fp ->
      let t = tree_of_fp fp in
      Alcotest.(check string)
        (Printf.sprintf "fingerprint forms agree on %s" fp)
        (Check.Fingerprint.tree t)
        (Mctree.Tree.fingerprint t))
    [ "T{|}"; "T{0-1|0,1}"; "T{0-1,1-2,2-5|0,2,5}" ]

(* --- runtime monitor on a full protocol run --- *)

let test_monitor_clean_run () =
  let graph = Net.Topo_gen.ring 6 in
  let net =
    Dgmc.Protocol.create ~graph ~config:Dgmc.Config.atm_lan ()
  in
  let m = Check.Monitor.attach net in
  Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:0 mc1 Dgmc.Member.Both;
  Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:3 mc1 Dgmc.Member.Both;
  Dgmc.Protocol.schedule_leave net ~at:5.0 ~switch:0 mc1;
  Dgmc.Protocol.run net;
  Check.Monitor.check_terminal m;
  Alcotest.(check bool) "monitor swept" true (Check.Monitor.sweeps m > 0);
  Check.Monitor.assert_ok m

let test_monitor_crash_resync () =
  (* Full protocol + fault plan: switch 1's outage swallows the flood of
     the join at 4; the scheduled recovery exchange (begin_resync at the
     window's close) must bring it back into agreement, under the
     invariant monitor throughout. *)
  let graph = Net.Topo_gen.ring 6 in
  let config =
    { Dgmc.Config.atm_lan with flood_mode = Lsr.Flooding.Reliable }
  in
  let plan = Faults.Plan.create ~seed:7 () in
  Faults.Plan.crash_switch plan ~switch:1 ~from_:1e-3 ~until:3e-3;
  let metrics = Metrics.Registry.create () in
  let net = Dgmc.Protocol.create ~graph ~config ~faults:plan ~metrics () in
  let m = Check.Monitor.attach net in
  Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:0 mc1 Dgmc.Member.Both;
  Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:3 mc1 Dgmc.Member.Both;
  Dgmc.Protocol.schedule_join net ~at:1.5e-3 ~switch:4 mc1 Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  Check.Monitor.check_terminal m;
  Check.Monitor.assert_ok m;
  Alcotest.(check bool) "switch 1 ran a recovery exchange" true
    (Metrics.Registry.counter_value metrics ~switch:1 "switch.resyncs_started"
    > 0);
  Alcotest.(check bool) "the exchange completed with a delta" true
    (Metrics.Registry.counter_value metrics ~switch:1
       "switch.resync_deltas_applied"
    > 0);
  match Dgmc.Protocol.divergence net mc1 with
  | [] -> ()
  | reasons ->
    Alcotest.failf "diverged after crash recovery: %s"
      (String.concat "; " reasons)

(* --- fuzzer regression seeds --- *)

(* Pinned seeds whose generated cases exercise distinct fault machinery:
   - 43: heavy loss + reordering on a WAN; the case that exposed the
     missing-secondary-sender bug in asymmetric topology computation.
   - 46: both a switch-crash and a partition window actually block
     traffic mid-run.
   - 47: 20 switches under a long partition window (thousands of
     blocked transmissions bridged by retransmission).
   - 65: heavy proposal-withdrawal activity (stale computations under
     churn).
   - 411: the acceptance case — 20 switches, 3 MCs, ~34% drop + 18%
     duplication + 26% reordering on every link.
   Each case is regenerated from its seed and must still pass; a
   deliberately perturbed case must still FAIL deterministically (the
   fuzzer's value is zero if run_case cannot distinguish). *)

let fuzz_regression_seeds = [ 43; 46; 47; 65; 411 ]

let test_fuzz_regression_seeds () =
  List.iter
    (fun seed ->
      let case = Check.Fuzz.case_of_seed seed in
      match Check.Fuzz.run_case case with
      | Ok stats ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d injected faults" seed)
          true
          (stats.s_faults.Faults.Plan.dropped > 0
          && stats.s_totals.Dgmc.Protocol.retransmissions > 0)
      | Error problems ->
        Alcotest.failf "fuzz seed %d regressed:\n%s" seed
          (String.concat "\n" problems))
    fuzz_regression_seeds

let test_fuzz_case_generation_is_deterministic () =
  let seed = 411 in
  let render c = Format.asprintf "%a" Check.Fuzz.pp_case c in
  Alcotest.(check string)
    "same seed renders the same case"
    (render (Check.Fuzz.case_of_seed seed))
    (render (Check.Fuzz.case_of_seed seed));
  let stats () =
    match Check.Fuzz.run_case (Check.Fuzz.case_of_seed seed) with
    | Ok s -> (s.s_totals, s.s_faults, s.s_sweeps)
    | Error ps -> Alcotest.failf "seed %d failed: %s" seed (String.concat "; " ps)
  in
  Alcotest.(check bool) "same seed runs identically" true (stats () = stats ())

let test_fuzz_acceptance_case () =
  (* The tentpole's acceptance criterion, pinned: a 20-switch, 3-MC run
     under ~30% loss + duplication + reordering on every link converges
     with zero monitor violations. *)
  let case = Check.Fuzz.case_of_seed 411 in
  Alcotest.(check int) "20 switches" 20 (Net.Graph.n_nodes case.graph);
  Alcotest.(check int) "3 MCs" 3 (List.length case.mcs);
  Alcotest.(check bool) "at least 30% loss" true
    (case.fault_spec.Faults.Plan.drop >= 0.3);
  match Check.Fuzz.run_case case with
  | Ok _ -> ()
  | Error problems ->
    Alcotest.failf "acceptance case diverged:\n%s" (String.concat "\n" problems)

(* --- guided search: rediscovering the historical bugs --- *)

(* Lengths of the fuzzer's shrunk repros for the two re-injected
   historical bugs (pinned by the shrinker regressions below); the
   acceptance bar for backward search is sequences no longer than
   these. *)
let fuzzer_shrunk_stale_senders = 8 (* seed 1030, flag_stale_senders=false *)

let fuzzer_shrunk_asymmetric_tree = 2 (* seed 1027, span_secondary_senders=false *)

let stale_senders_config =
  { Dgmc.Config.atm_lan with flag_stale_senders = false }

let asymmetric_tree_config =
  { Dgmc.Config.atm_lan with span_secondary_senders = false }

let render_backward b = Format.asprintf "%a" Check.Search.pp_backward b

(* Backward search must rediscover a re-injected historical bug as a
   minimal fault sequence — pinned exactly, byte-identical at any
   domain count, and no longer than the fuzzer's shrunk repro. *)
let backward_rediscovery ~config ~mcs ~expected_lines ~fuzzer_len () =
  let search domains =
    Check.Search.backward ~max_len:2 ~domains ~graph:(Net.Topo_gen.ring 4)
      ~config ~mcs ()
  in
  let b = search 1 in
  (match b.Check.Search.b_found with
  | None -> Alcotest.fail "backward search did not rediscover the bug"
  | Some (events, found) ->
    Alcotest.(check (list string))
      "pinned minimal fault sequence" expected_lines
      (Check.Search.event_lines events);
    Alcotest.(check bool)
      "no longer than the fuzzer's shrunk repro" true
      (List.length events <= fuzzer_len);
    Alcotest.(check bool)
      "the violation names at least one law" true
      (found.Check.Search.laws <> []));
  let r1 = render_backward b in
  Alcotest.(check string) "domains 2 byte-identical" r1
    (render_backward (search 2));
  Alcotest.(check string) "domains 4 byte-identical" r1
    (render_backward (search 4))

let test_search_rediscovers_stale_senders () =
  backward_rediscovery ~config:stale_senders_config ~mcs:[ mc1 ]
    ~expected_lines:
      [
        "[0] join switch=0 mc#1(symmetric) (both)";
        "[1] join switch=1 mc#1(symmetric) (both)";
      ]
    ~fuzzer_len:fuzzer_shrunk_stale_senders ()

let test_search_rediscovers_asymmetric_tree () =
  backward_rediscovery ~config:asymmetric_tree_config
    ~mcs:[ Dgmc.Mc_id.make Asymmetric 1 ]
    ~expected_lines:
      [
        "[0] join switch=0 mc#1(asymmetric) (sender)";
        "[1] join switch=1 mc#1(asymmetric) (sender)";
      ]
    ~fuzzer_len:fuzzer_shrunk_asymmetric_tree ()

let test_search_forward_is_guided () =
  (* Best-first with the violation-distance heuristic reaches the
     stale-senders violation after visiting a fraction of the space the
     exhaustive checker covers on the fixed variant (1047 states). *)
  let scenario =
    base_scenario ~config:stale_senders_config ~setup:[]
      ~race:[ join 0; join 2 ] ()
  in
  let o = Check.Search.forward scenario in
  (match o.Check.Search.f_found with
  | None -> Alcotest.fail "guided forward search missed the violation"
  | Some f ->
    Alcotest.(check bool) "trace reaches the violating state" true
      (f.Check.Search.depth > 0));
  Alcotest.(check bool) "guided: well under the exhaustive state count" true
    (o.Check.Search.f_states < 200)

(* --- shrinker timing minimisation --- *)

let reinject config case =
  { case with Check.Fuzz.config =
      { case.Check.Fuzz.config with
        Dgmc.Config.flag_stale_senders =
          config.Dgmc.Config.flag_stale_senders;
        span_secondary_senders = config.Dgmc.Config.span_secondary_senders;
      } }

let shrink_regression ~seed ~config ~expected_len =
  let case = reinject config (Check.Fuzz.case_of_seed seed) in
  (match Check.Fuzz.run_case case with
  | Ok _ -> Alcotest.failf "seed %d no longer fails under the bug" seed
  | Error _ -> ());
  let shrunk, _runs = Check.Fuzz.shrink case in
  Alcotest.(check int)
    (Printf.sprintf "seed %d shrinks to its known minimal length" seed)
    expected_len (List.length shrunk);
  (* The timing pass: every surviving event collapses to tick 0 — the
     failure needs the events, not the gaps the generator drew. *)
  Alcotest.(check bool) "timing minimised to tick 0" true
    (List.for_all (fun (e : Workload.Events.t) -> e.time = 0.0) shrunk);
  let render evs =
    String.concat "\n"
      (List.map (fun e -> Format.asprintf "%a" Workload.Events.pp e) evs)
  in
  let again, _ = Check.Fuzz.shrink case in
  Alcotest.(check string) "shrinking is deterministic" (render shrunk)
    (render again)

let test_shrink_minimises_timing_stale_senders () =
  (* Seed 1026 stays green even under the bug — random fault schedules
     miss it, which is exactly why the guided search exists... *)
  (match
     Check.Fuzz.run_case (reinject stale_senders_config (Check.Fuzz.case_of_seed 1026))
   with
  | Ok _ -> ()
  | Error ps ->
    Alcotest.failf "seed 1026 unexpectedly fails: %s" (String.concat "; " ps));
  (* ...while 1030 trips it, and shrinks — placement and timing both. *)
  shrink_regression ~seed:1030 ~config:stale_senders_config
    ~expected_len:fuzzer_shrunk_stale_senders

let test_shrink_minimises_timing_asymmetric_tree () =
  shrink_regression ~seed:1027 ~config:asymmetric_tree_config
    ~expected_len:fuzzer_shrunk_asymmetric_tree

(* --- linter unit tests --- *)

let lint_lines text =
  List.map
    (fun (d : Check.Scenario_lint.diagnostic) ->
      (d.line, d.severity = Check.Scenario_lint.Error))
    (Check.Scenario_lint.lint text)

let test_lint_clean () =
  let text =
    "graph ring 6\nconfig atm\nmc 1 symmetric\nat 0 join 0 mc=1\n\
     at 1r leave 0 mc=1\n"
  in
  Alcotest.(check (list (pair int bool))) "no diagnostics" [] (lint_lines text)

let test_lint_catches_errors () =
  let text =
    String.concat "\n"
      [
        "graph ring 4";
        "mc 1 symmetric";
        "mc 1 symmetric";  (* 3: duplicate mc *)
        "at 0 join 9 mc=1";  (* 4: switch out of range *)
        "at 1 join 0 mc=7";  (* 5: undeclared mc *)
        "at 2 leave 2 mc=1";  (* 6: leave without join *)
        "at 3 linkdown 0 2";  (* 7: no such link on a ring *)
        "at 4 join 1 role=captain mc=1";  (* 8: bad role *)
        "at -1 join 1 mc=1";  (* 9: negative time *)
        "at 5 join 1 banana mc=1";  (* 10: stray token *)
      ]
  in
  let lines =
    List.filter_map (fun (l, is_err) -> if is_err then Some l else None)
      (lint_lines text)
  in
  Alcotest.(check (list int)) "one error per broken line"
    [ 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.sort_uniq compare lines)

let test_lint_warnings () =
  let text =
    String.concat "\n"
      [
        "graph ring 4";
        "mc 1 symmetric";
        "mc 2 symmetric";  (* unused -> warning *)
        "at 2 join 0 mc=1";
        "at 1 join 1 mc=1";  (* time moves backwards -> warning *)
        "at 3 linkup 0 1";  (* already up -> warning *)
      ]
  in
  let diags = Check.Scenario_lint.lint text in
  Alcotest.(check int) "no errors" 0 (Check.Scenario_lint.errors diags);
  Alcotest.(check int) "three warnings" 3 (Check.Scenario_lint.warnings diags)

let test_lint_missing_graph () =
  let diags = Check.Scenario_lint.lint "config atm\nmc 1 symmetric\n" in
  Alcotest.(check bool) "missing graph is an error" true
    (Check.Scenario_lint.errors diags > 0)

let test_lint_health_directive () =
  let lint lines = Check.Scenario_lint.lint (String.concat "\n" lines) in
  let base = [ "graph line 3"; "mc 1 symmetric"; "at 0 join 0 mc=1" ] in
  let clean =
    lint (base @ [ "health period=0.5r detector=k:3"; "at 1r linkdown 0 1" ])
  in
  Alcotest.(check int) "valid health directive lints clean" 0
    (Check.Scenario_lint.errors clean);
  let bad_key = lint (base @ [ "health perod=0.5r" ]) in
  Alcotest.(check bool) "unknown key is an error" true
    (Check.Scenario_lint.errors bad_key > 0);
  let bad_detector = lint (base @ [ "health detector=banana" ]) in
  Alcotest.(check bool) "unparseable detector is an error" true
    (Check.Scenario_lint.errors bad_detector > 0);
  let bad_damping =
    lint (base @ [ "health damp-suppress=0.1 damp-reuse=0.5" ])
  in
  Alcotest.(check bool) "suppress below reuse fails semantic validation" true
    (Check.Scenario_lint.errors bad_damping > 0);
  let no_links = lint (base @ [ "health period=0.5r" ]) in
  Alcotest.(check int) "health without link events is not an error" 0
    (Check.Scenario_lint.errors no_links);
  Alcotest.(check bool) "…but warns that there is nothing to detect" true
    (Check.Scenario_lint.warnings no_links > 0)

(* --- the abstract hello model, exhaustively explored --- *)

(* K_missed 2 → detection proven by round 3; damping (when on) suppresses
   at the first flap and readmits after one calm round. *)
let hello_config ?damping () =
  let damping =
    if Option.value damping ~default:false then
      Some
        {
          Health.Config.d_penalty = 1.0;
          d_suppress = 1.0;
          d_reuse = 0.5;
          d_half_life = 0.001;
        }
    else None
  in
  Health.Config.make ~period:0.001 ~detector:(Health.Detector.K_missed 2)
    ?damping ~horizon:1.0 ()

let health_atm ?damping () =
  { Dgmc.Config.atm_lan with Dgmc.Config.health = Some (hello_config ?damping ()) }

(* Ring 3 keeps the members connected when one link (or the middle
   switch) fails, so the terminal agreement laws stay applicable. *)
let hello_scenario ?damping ~setup ~race () =
  {
    Check.Explore.graph = Net.Topo_gen.ring 3;
    config = health_atm ?damping ();
    setup;
    race;
  }

let test_hello_fault_free_no_false_positive () =
  (* Law "hello-false-positive", proven over every interleaving: with
     every link up and nobody crashed, no hello round — wherever it
     lands relative to a racing join — may produce a down declaration. *)
  let scenario =
    hello_scenario ~setup:[ join 0 ]
      ~race:
        [
          join 2;
          Check.Harness.Hello_round;
          Check.Harness.Hello_round;
          Check.Harness.Hello_round;
          Check.Harness.Hello_round;
        ]
      ()
  in
  let o = Check.Explore.run scenario in
  Format.printf "hello fault-free: %a@." Check.Explore.pp_outcome o;
  (match o.violation with
  | Some v ->
    Alcotest.failf "unexpected violation: %s\ntrace:\n%s" v.message
      (String.concat "\n" v.trace)
  | None -> ());
  Alcotest.(check bool) "exploration complete" true o.complete;
  Alcotest.(check bool) "reached terminal states" true (o.terminals > 0)

let test_hello_detection_proven () =
  (* Law "hello-detect": in every interleaving of a link failure with
     enough hello rounds, any adjacency whose truth has been down for
     a_detect_rounds observed rounds must be believed down.  Completing
     with no violation proves the abstract detectors never sleep through
     a failure. *)
  let rounds =
    match
      Check.Harness.health_detect_rounds
        (Check.Harness.create ~graph:(Net.Topo_gen.ring 3)
           ~config:(health_atm ()) ())
    with
    | Some r -> r
    | None -> Alcotest.fail "health layer not engaged in the harness"
  in
  let scenario =
    hello_scenario ~setup:[ join 0; join 2 ]
      ~race:
        (Check.Harness.Link_down (0, 1)
        :: List.init (rounds + 1) (fun _ -> Check.Harness.Hello_round))
      ()
  in
  let o = Check.Explore.run scenario in
  Format.printf "hello detect: %a@." Check.Explore.pp_outcome o;
  (match o.violation with
  | Some v ->
    Alcotest.failf "unexpected violation: %s\ntrace:\n%s" v.message
      (String.concat "\n" v.trace)
  | None -> ());
  Alcotest.(check bool) "exploration complete" true o.complete;
  (* And concretely, on the deterministic schedule: silence for
     a_detect_rounds flips both endpoint beliefs, with zero spurious
     declarations. *)
  let h =
    Check.Harness.create ~graph:(Net.Topo_gen.ring 3) ~config:(health_atm ())
      ()
  in
  Check.Harness.inject h (join 0);
  Check.Harness.inject h (join 2);
  Check.Harness.settle h;
  Check.Harness.inject h (Check.Harness.Link_down (0, 1));
  for _ = 1 to rounds do
    Check.Harness.inject h Check.Harness.Hello_round
  done;
  Check.Harness.settle h;
  let believed_down w p =
    List.exists
      (fun (a : Check.Harness.adjacency_view) ->
        a.av_watcher = w && a.av_peer = p && not a.av_up)
      (Check.Harness.health_adjacencies h)
  in
  Alcotest.(check bool) "0 believes its link to 1 down" true
    (believed_down 0 1);
  Alcotest.(check bool) "1 believes its link to 0 down" true
    (believed_down 1 0);
  Alcotest.(check (list string)) "no spurious declaration" []
    (Check.Harness.health_spurious h)

let test_hello_damping_suppress_and_readmit () =
  (* Damping lifecycle in the abstract model, plus the terminal
     "suppress-install" law: after the flap suppresses the link, no
     installed tree may use it; after readmission and recovery the
     network reconverges. *)
  let graph = Net.Topo_gen.line 3 in
  let h =
    Check.Harness.create ~graph ~config:(health_atm ~damping:true ()) ()
  in
  Check.Harness.inject h (join 0);
  Check.Harness.inject h (join 2);
  Check.Harness.settle h;
  Check.Harness.inject h (Check.Harness.Link_down (0, 1));
  for _ = 1 to 3 do
    Check.Harness.inject h Check.Harness.Hello_round
  done;
  Check.Harness.settle h;
  Alcotest.(check (list (pair int int))) "first flap suppresses the link"
    [ (0, 1) ]
    (Check.Harness.suppressed_links h);
  (* Terminal law while suppressed: no installed tree contains (0,1) —
     the members 0 and 2 cannot even form a tree without it on a line,
     so the checker must see the degraded state, not a violation. *)
  let violations =
    Check.Invariant.check_health_terminal
      ~suppressed:(Check.Harness.suppressed_links h)
      (Check.Harness.switches h)
  in
  Alcotest.(check int) "no tree uses the suppressed link" 0
    (List.length violations);
  (* Heal the link; one calm round readmits, two arrivals re-up. *)
  Check.Harness.inject h (Check.Harness.Link_up (0, 1));
  for _ = 1 to 4 do
    Check.Harness.inject h Check.Harness.Hello_round
  done;
  Check.Harness.settle h;
  Alcotest.(check (list (pair int int))) "readmitted after the calm" []
    (Check.Harness.suppressed_links h);
  Alcotest.(check bool) "all adjacencies believed up again" true
    (List.for_all
       (fun (a : Check.Harness.adjacency_view) -> a.av_up)
       (Check.Harness.health_adjacencies h));
  Alcotest.(check (list string)) "no spurious declaration" []
    (Check.Harness.health_spurious h)

let test_hello_crash_detection_legitimate () =
  (* A crashed peer goes silent exactly like a dead link; declaring it
     down is a legitimate detection, not a false positive — explored
     across every interleaving of the crash and the rounds. *)
  let scenario =
    hello_scenario ~setup:[ join 0; join 2 ]
      ~race:
        (Check.Harness.Crash 1
        :: List.init 4 (fun _ -> Check.Harness.Hello_round))
      ()
  in
  let o = Check.Explore.run scenario in
  Format.printf "hello crash: %a@." Check.Explore.pp_outcome o;
  (match o.violation with
  | Some v ->
    Alcotest.failf "unexpected violation: %s\ntrace:\n%s" v.message
      (String.concat "\n" v.trace)
  | None -> ());
  Alcotest.(check bool) "exploration complete" true o.complete

let () =
  Alcotest.run "check"
    [
      ( "explore",
        [
          Alcotest.test_case "two concurrent joins: exhaustive, no violations"
            `Slow test_two_concurrent_joins;
          Alcotest.test_case "join vs link failure: exhaustive, no violations"
            `Slow test_join_vs_link_failure;
          Alcotest.test_case "broken variant (no stale-sender flag) is caught"
            `Quick test_broken_variant_caught;
          Alcotest.test_case "no-withdrawal variant provably self-heals" `Slow
            test_no_withdrawal_self_heals;
          Alcotest.test_case "crash + recover vs live join: exhaustive" `Slow
            test_crash_recover_interleavings;
          Alcotest.test_case "overlapping crash windows: exhaustive" `Slow
            test_crash_overlapping_crash;
        ] );
      ( "resync",
        [
          Alcotest.test_case "codec round-trips" `Quick
            test_resync_codec_round_trip;
          Alcotest.test_case "codec rejects malformed input" `Quick
            test_resync_codec_rejects_malformed;
          Alcotest.test_case "tree fingerprint forms agree" `Quick
            test_tree_fingerprint_matches_check;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "clean lifecycle run" `Quick test_monitor_clean_run;
          Alcotest.test_case "crash-window run resynchronises" `Quick
            test_monitor_crash_resync;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "pinned regression seeds still pass" `Slow
            test_fuzz_regression_seeds;
          Alcotest.test_case "case generation and runs are deterministic"
            `Slow test_fuzz_case_generation_is_deterministic;
          Alcotest.test_case "acceptance: 20 switches, 3 MCs, 30% loss" `Slow
            test_fuzz_acceptance_case;
        ] );
      ( "search",
        [
          Alcotest.test_case
            "backward rediscovers the stale-senders bug (domains 1/2/4)"
            `Slow test_search_rediscovers_stale_senders;
          Alcotest.test_case
            "backward rediscovers the asymmetric-tree bug (domains 1/2/4)"
            `Slow test_search_rediscovers_asymmetric_tree;
          Alcotest.test_case "forward search is guided, not exhaustive"
            `Quick test_search_forward_is_guided;
          Alcotest.test_case "shrinker minimises timing (stale-senders)"
            `Slow test_shrink_minimises_timing_stale_senders;
          Alcotest.test_case "shrinker minimises timing (asymmetric-tree)"
            `Slow test_shrink_minimises_timing_asymmetric_tree;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean scenario" `Quick test_lint_clean;
          Alcotest.test_case "errors with line numbers" `Quick
            test_lint_catches_errors;
          Alcotest.test_case "warnings" `Quick test_lint_warnings;
          Alcotest.test_case "missing graph" `Quick test_lint_missing_graph;
          Alcotest.test_case "health directive" `Quick
            test_lint_health_directive;
        ] );
      ( "hello-model",
        [
          Alcotest.test_case "fault-free rounds: no false positive, proven"
            `Quick test_hello_fault_free_no_false_positive;
          Alcotest.test_case "link failure is detected in every interleaving"
            `Quick test_hello_detection_proven;
          Alcotest.test_case "damping suppresses, terminal law holds, readmits"
            `Quick test_hello_damping_suppress_and_readmit;
          Alcotest.test_case "crashed peer detection is legitimate" `Quick
            test_hello_crash_detection_legitimate;
        ] );
    ]
