(* Tests for the link-state routing substrate (lib/lsr): LSA envelopes,
   flooding, the link-state database, and unicast routing tables. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Lsa *)

let test_lsa_identity () =
  let lsa = Lsr.Lsa.make ~origin:3 ~seq:7 "payload" in
  check Alcotest.(pair int int) "id" (3, 7) (Lsr.Lsa.id lsa);
  check Alcotest.string "payload" "payload" lsa.payload

let test_lsa_map () =
  let lsa = Lsr.Lsa.make ~origin:1 ~seq:2 21 in
  let doubled = Lsr.Lsa.map (fun x -> x * 2) lsa in
  check Alcotest.int "mapped" 42 doubled.payload;
  check Alcotest.(pair int int) "identity preserved" (1, 2) (Lsr.Lsa.id doubled)

let test_lsa_seq_counter () =
  let c = Lsr.Lsa.Seq.create () in
  check Alcotest.(list int) "monotone from zero" [ 0; 1; 2; 3 ]
    (List.init 4 (fun _ -> Lsr.Lsa.Seq.next c));
  let c2 = Lsr.Lsa.Seq.create () in
  check Alcotest.int "independent counters" 0 (Lsr.Lsa.Seq.next c2)

(* ------------------------------------------------------------------ *)
(* Flooding *)

type received = { switch : int; time : float }

let flood_once ?(mode = Lsr.Flooding.Hop_by_hop) graph ~origin ~t_hop =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let deliver ~switch _lsa =
    log := { switch; time = Sim.Engine.now engine } :: !log
  in
  let f = Lsr.Flooding.create ~engine ~graph ~t_hop ~mode ~deliver () in
  Lsr.Flooding.flood f (Lsr.Lsa.make ~origin ~seq:0 ());
  Sim.Engine.run engine;
  (f, List.rev !log)

let test_flooding_reaches_everyone_once () =
  let g = Net.Topo_gen.ring 8 in
  let _, log = flood_once g ~origin:0 ~t_hop:1.0 in
  let receivers = List.map (fun r -> r.switch) log in
  check Alcotest.int "everyone but origin" 7
    (List.length (List.sort_uniq compare receivers));
  check Alcotest.int "no duplicates" (List.length receivers)
    (List.length (List.sort_uniq compare receivers));
  check Alcotest.bool "origin not delivered" true (not (List.mem 0 receivers))

let test_flooding_arrival_times_are_hops () =
  let g = Net.Topo_gen.ring 8 in
  let _, log = flood_once g ~origin:0 ~t_hop:2.0 in
  let hops = Net.Bfs.hops g 0 in
  List.iter
    (fun r ->
      check Alcotest.(float 1e-9) "arrival = hops * t_hop"
        (2.0 *. float_of_int hops.(r.switch))
        r.time)
    log

let test_flooding_ideal_matches_hop_by_hop_times () =
  let g = Net.Topo_gen.grid ~rows:3 ~cols:4 () in
  let _, log_h = flood_once g ~origin:0 ~t_hop:1.0 in
  let _, log_i = flood_once ~mode:Lsr.Flooding.Ideal g ~origin:0 ~t_hop:1.0 in
  let arrivals log =
    List.sort compare (List.map (fun r -> (r.switch, r.time)) log)
  in
  check
    Alcotest.(list (pair int (float 1e-9)))
    "same delivery schedule" (arrivals log_h) (arrivals log_i)

let test_flooding_counters () =
  let g = Net.Topo_gen.line 4 in
  let f, _ = flood_once g ~origin:0 ~t_hop:1.0 in
  check Alcotest.int "one flood" 1 (Lsr.Flooding.floods_started f);
  (* Line 0-1-2-3: 0 sends 1 msg; 1 forwards 1; 2 forwards 1 => 3. *)
  check Alcotest.int "messages" 3 (Lsr.Flooding.messages_sent f);
  Lsr.Flooding.reset_counters f;
  check Alcotest.int "reset" 0 (Lsr.Flooding.floods_started f)

let test_flooding_ring_message_count () =
  (* On a ring every switch forwards once except where duplicates meet;
     total transmissions = 2 per... measure against the known value for
     a 6-ring: origin sends 2; each of the first-wave switches forwards
     1 onward; the two waves cross.  The exact count is 6 or 7 depending
     on parity; assert the bound instead. *)
  let g = Net.Topo_gen.ring 6 in
  let f, _ = flood_once g ~origin:0 ~t_hop:1.0 in
  let m = Lsr.Flooding.messages_sent f in
  if m < 6 || m > 8 then Alcotest.failf "unexpected ring message count %d" m

let test_flooding_partition () =
  let g = Net.Topo_gen.line 5 in
  Net.Graph.set_link g 2 3 ~up:false;
  let _, log = flood_once g ~origin:0 ~t_hop:1.0 in
  let receivers = List.sort compare (List.map (fun r -> r.switch) log) in
  check Alcotest.(list int) "only the near side" [ 1; 2 ] receivers

let test_flooding_link_fails_mid_flood () =
  (* The link 1-2 dies while the LSA is in flight on it: delivery to the
     far side must not happen through that link. *)
  let g = Net.Topo_gen.line 3 in
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let deliver ~switch _ = log := switch :: !log in
  let f = Lsr.Flooding.create ~engine ~graph:g ~t_hop:2.0 ~deliver () in
  Lsr.Flooding.flood f (Lsr.Lsa.make ~origin:0 ~seq:0 ());
  (* At t=1 the LSA is between 0 and 1 (arrives at 1 at t=2, would be
     forwarded to 2 arriving at t=4); kill 1-2 at t=3. *)
  ignore
    (Sim.Engine.schedule engine ~delay:3.0 (fun () ->
         Net.Graph.set_link g 1 2 ~up:false));
  Sim.Engine.run engine;
  check Alcotest.(list int) "switch 2 never receives" [ 1 ] !log

let test_flooding_duplicate_lsa_ignored () =
  let g = Net.Topo_gen.complete 4 in
  let engine = Sim.Engine.create () in
  let count = ref 0 in
  let deliver ~switch:_ _ = incr count in
  let f = Lsr.Flooding.create ~engine ~graph:g ~t_hop:1.0 ~deliver () in
  let lsa = Lsr.Lsa.make ~origin:0 ~seq:0 () in
  Lsr.Flooding.flood f lsa;
  Lsr.Flooding.flood f lsa;
  Sim.Engine.run engine;
  (* The same (origin, seq) flooded twice is suppressed everywhere. *)
  check Alcotest.int "delivered once per switch" 3 !count

let test_flood_diameter () =
  let g = Net.Topo_gen.line 5 in
  check Alcotest.(float 1e-9) "diameter time" 8.0
    (Lsr.Flooding.flood_diameter ~graph:g ~t_hop:2.0)

let test_flooding_rejects_bad_t_hop () =
  let g = Net.Topo_gen.line 3 in
  Alcotest.check_raises "t_hop <= 0"
    (Invalid_argument "Flooding.create: t_hop must be positive") (fun () ->
      ignore
        (Lsr.Flooding.create ~engine:(Sim.Engine.create ()) ~graph:g ~t_hop:0.0
           ~deliver:(fun ~switch:_ _ -> ())
           ()))

(* ------------------------------------------------------------------ *)
(* Lsdb *)

let test_lsdb_isolated_copy () =
  let g = Net.Topo_gen.line 3 in
  let db = Lsr.Lsdb.create g in
  Net.Graph.set_link g 0 1 ~up:false;
  check Alcotest.bool "image unaffected by real graph" true
    (Net.Graph.link_is_up (Lsr.Lsdb.graph db) 0 1)

let test_lsdb_apply () =
  let g = Net.Topo_gen.line 3 in
  let db = Lsr.Lsdb.create g in
  Lsr.Lsdb.apply db { u = 0; v = 1; up = false; version = 1 };
  check Alcotest.bool "down applied" false
    (Net.Graph.link_is_up (Lsr.Lsdb.graph db) 0 1);
  Lsr.Lsdb.apply db { u = 0; v = 1; up = true; version = 2 };
  check Alcotest.bool "up applied" true
    (Net.Graph.link_is_up (Lsr.Lsdb.graph db) 0 1)

let test_lsdb_version_gating () =
  let g = Net.Topo_gen.line 3 in
  let db = Lsr.Lsdb.create g in
  check Alcotest.int "boot version" 0 (Lsr.Lsdb.version db ~u:0 ~v:1);
  Lsr.Lsdb.apply db { u = 0; v = 1; up = false; version = 2 };
  check Alcotest.int "version recorded" 2 (Lsr.Lsdb.version db ~u:0 ~v:1);
  (* A stale re-flood (an older change learned late) must not win. *)
  Lsr.Lsdb.apply db { u = 0; v = 1; up = true; version = 1 };
  check Alcotest.bool "stale version ignored" false
    (Net.Graph.link_is_up (Lsr.Lsdb.graph db) 0 1);
  (* Duplicates of the same change are no-ops too. *)
  Lsr.Lsdb.apply db { u = 0; v = 1; up = true; version = 2 };
  check Alcotest.bool "duplicate version ignored" false
    (Net.Graph.link_is_up (Lsr.Lsdb.graph db) 0 1);
  Lsr.Lsdb.apply db { u = 0; v = 1; up = true; version = 3 };
  check Alcotest.bool "newer version applies" true
    (Net.Graph.link_is_up (Lsr.Lsdb.graph db) 0 1);
  (* Endpoint order is normalised. *)
  check Alcotest.int "symmetric lookup" 3 (Lsr.Lsdb.version db ~u:1 ~v:0)

let test_lsdb_entries () =
  let g = Net.Topo_gen.line 3 in
  let db = Lsr.Lsdb.create g in
  check
    (Alcotest.list Alcotest.int)
    "boot entries empty" []
    (List.map (fun (e : Lsr.Lsdb.link_event) -> e.version) (Lsr.Lsdb.entries db));
  Lsr.Lsdb.apply db { u = 1; v = 2; up = false; version = 1 };
  Lsr.Lsdb.apply db { u = 0; v = 1; up = false; version = 1 };
  Lsr.Lsdb.apply db { u = 0; v = 1; up = true; version = 2 };
  match Lsr.Lsdb.entries db with
  | [ a; b ] ->
    check Alcotest.(triple int int bool) "first entry sorted" (0, 1, true)
      (a.u, a.v, a.up);
    check Alcotest.int "first entry version" 2 a.version;
    check Alcotest.(triple int int bool) "second entry" (1, 2, false)
      (b.u, b.v, b.up);
    check Alcotest.int "second entry version" 1 b.version
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l)

let test_lsdb_unknown_link_ignored () =
  let g = Net.Topo_gen.line 3 in
  let db = Lsr.Lsdb.create g in
  Lsr.Lsdb.apply db { u = 0; v = 2; up = false; version = 1 };
  check Alcotest.int "graph unchanged" 2 (Net.Graph.n_edges (Lsr.Lsdb.graph db))

(* ------------------------------------------------------------------ *)
(* Unicast *)

let house () =
  Net.Graph.of_edges 5
    [ (0, 1, 1.0); (1, 2, 1.0); (0, 3, 4.0); (2, 4, 1.0); (3, 4, 1.0) ]

let test_unicast_next_hop () =
  let t = Lsr.Unicast.compute (house ()) in
  check Alcotest.(option int) "first hop 0->4" (Some 1)
    (Lsr.Unicast.next_hop t ~src:0 ~dst:4);
  check Alcotest.(option int) "self" None (Lsr.Unicast.next_hop t ~src:2 ~dst:2)

let test_unicast_route () =
  let t = Lsr.Unicast.compute (house ()) in
  check
    Alcotest.(option (list int))
    "route" (Some [ 0; 1; 2; 4 ])
    (Lsr.Unicast.route t ~src:0 ~dst:4);
  check Alcotest.(float 1e-9) "distance" 3.0 (Lsr.Unicast.distance t ~src:0 ~dst:4)

let test_unicast_unreachable () =
  let g = Net.Graph.of_edges 3 [ (0, 1, 1.0) ] in
  let t = Lsr.Unicast.compute g in
  check Alcotest.(option int) "no hop" None (Lsr.Unicast.next_hop t ~src:0 ~dst:2);
  check Alcotest.bool "infinite distance" true
    (Lsr.Unicast.distance t ~src:0 ~dst:2 = infinity)

let test_unicast_hop_chain_consistent () =
  (* Following next hops from any src reaches dst in finite steps. *)
  let g = Net.Topo_gen.grid ~rows:3 ~cols:3 () in
  let t = Lsr.Unicast.compute g in
  for src = 0 to 8 do
    for dst = 0 to 8 do
      if src <> dst then begin
        let rec walk node steps =
          if steps > 9 then Alcotest.fail "routing loop"
          else if node = dst then steps
          else
            match Lsr.Unicast.next_hop t ~src:node ~dst with
            | Some hop -> walk hop (steps + 1)
            | None -> Alcotest.fail "dead end"
        in
        ignore (walk src 0)
      end
    done
  done

let () =
  Alcotest.run "lsr"
    [
      ( "lsa",
        [
          Alcotest.test_case "identity" `Quick test_lsa_identity;
          Alcotest.test_case "map" `Quick test_lsa_map;
          Alcotest.test_case "sequence counter" `Quick test_lsa_seq_counter;
        ] );
      ( "flooding",
        [
          Alcotest.test_case "reaches everyone once" `Quick
            test_flooding_reaches_everyone_once;
          Alcotest.test_case "arrival times" `Quick
            test_flooding_arrival_times_are_hops;
          Alcotest.test_case "ideal mode equivalence" `Quick
            test_flooding_ideal_matches_hop_by_hop_times;
          Alcotest.test_case "counters" `Quick test_flooding_counters;
          Alcotest.test_case "ring message count" `Quick
            test_flooding_ring_message_count;
          Alcotest.test_case "partition" `Quick test_flooding_partition;
          Alcotest.test_case "link fails mid-flood" `Quick
            test_flooding_link_fails_mid_flood;
          Alcotest.test_case "duplicate suppression" `Quick
            test_flooding_duplicate_lsa_ignored;
          Alcotest.test_case "flood diameter" `Quick test_flood_diameter;
          Alcotest.test_case "rejects bad t_hop" `Quick
            test_flooding_rejects_bad_t_hop;
        ] );
      ( "lsdb",
        [
          Alcotest.test_case "isolated copy" `Quick test_lsdb_isolated_copy;
          Alcotest.test_case "apply events" `Quick test_lsdb_apply;
          Alcotest.test_case "version gating" `Quick test_lsdb_version_gating;
          Alcotest.test_case "entries export" `Quick test_lsdb_entries;
          Alcotest.test_case "unknown link ignored" `Quick
            test_lsdb_unknown_link_ignored;
        ] );
      ( "unicast",
        [
          Alcotest.test_case "next hop" `Quick test_unicast_next_hop;
          Alcotest.test_case "route and distance" `Quick test_unicast_route;
          Alcotest.test_case "unreachable" `Quick test_unicast_unreachable;
          Alcotest.test_case "hop chains consistent" `Quick
            test_unicast_hop_chain_consistent;
        ] );
    ]
