(* Tests for the workload generators (lib/workload). *)

let check = Alcotest.check

let mc_sym = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

let mc_recv = Dgmc.Mc_id.make Dgmc.Mc_id.Receiver_only 2

let mc_asym = Dgmc.Mc_id.make Dgmc.Mc_id.Asymmetric 3

let joined_switches events =
  List.filter_map
    (fun (e : Workload.Events.t) ->
      match e.action with
      | Workload.Events.Join { switch; _ } -> Some switch
      | _ -> None)
    events

(* ------------------------------------------------------------------ *)
(* Events utilities *)

let test_events_sort_stable () =
  let mk time tag =
    {
      Workload.Events.time;
      action = Workload.Events.Join { switch = tag; mc = mc_sym; role = Dgmc.Member.Both };
    }
  in
  let sorted = Workload.Events.sort [ mk 2.0 0; mk 1.0 1; mk 2.0 2 ] in
  check Alcotest.(list int) "stable time sort" [ 1; 0; 2 ] (joined_switches sorted)

let test_events_counts_and_span () =
  let events =
    [
      { Workload.Events.time = 1.0; action = Workload.Events.Link_down (0, 1) };
      {
        Workload.Events.time = 3.0;
        action = Workload.Events.Join { switch = 2; mc = mc_sym; role = Dgmc.Member.Both };
      };
      { Workload.Events.time = 6.0; action = Workload.Events.Leave { switch = 2; mc = mc_sym } };
    ]
  in
  check Alcotest.int "count" 3 (Workload.Events.count events);
  check Alcotest.int "membership count" 2 (Workload.Events.membership_count events);
  check Alcotest.(float 1e-9) "span" 5.0 (Workload.Events.span events)

let test_events_mcs () =
  let events =
    [
      {
        Workload.Events.time = 0.0;
        action = Workload.Events.Join { switch = 0; mc = mc_sym; role = Dgmc.Member.Both };
      };
      {
        Workload.Events.time = 0.0;
        action = Workload.Events.Join { switch = 1; mc = mc_recv; role = Dgmc.Member.Receiver };
      };
      { Workload.Events.time = 1.0; action = Workload.Events.Leave { switch = 0; mc = mc_sym } };
    ]
  in
  check Alcotest.int "distinct mcs" 2 (List.length (Workload.Events.mcs events))

let test_events_apply_dgmc () =
  let graph = Net.Topo_gen.grid ~rows:3 ~cols:3 () in
  let net = Dgmc.Protocol.create ~graph ~config:Dgmc.Config.atm_lan () in
  let events =
    [
      {
        Workload.Events.time = 0.0;
        action = Workload.Events.Join { switch = 0; mc = mc_sym; role = Dgmc.Member.Both };
      };
      {
        Workload.Events.time = 1.0;
        action = Workload.Events.Join { switch = 8; mc = mc_sym; role = Dgmc.Member.Both };
      };
    ]
  in
  Workload.Events.apply_dgmc net events;
  Dgmc.Protocol.run net;
  check Alcotest.bool "scenario converges" true (Dgmc.Protocol.converged net mc_sym);
  let m = Option.get (Dgmc.Switch.members (Dgmc.Protocol.switch net 4) mc_sym) in
  check Alcotest.(list int) "both joined" [ 0; 8 ] (Dgmc.Member.ids m)

(* ------------------------------------------------------------------ *)
(* Bursty *)

let test_bursty_joins_shape () =
  let rng = Sim.Rng.create 1 in
  let events = Workload.Bursty.joins rng ~n:30 ~mc:mc_sym ~members:10 ~window:5.0 () in
  check Alcotest.int "event count" 10 (List.length events);
  let switches = joined_switches events in
  check Alcotest.int "distinct switches" 10
    (List.length (List.sort_uniq compare switches));
  List.iter
    (fun (e : Workload.Events.t) ->
      if e.time < 0.0 || e.time >= 5.0 then Alcotest.failf "outside window: %f" e.time)
    events;
  (* Sorted by time. *)
  let times = List.map (fun (e : Workload.Events.t) -> e.time) events in
  check Alcotest.bool "sorted" true (List.sort compare times = times)

let test_bursty_roles_by_kind () =
  let roles mc =
    let rng = Sim.Rng.create 2 in
    Workload.Bursty.joins rng ~n:20 ~mc ~members:5 ~window:1.0 ()
    |> List.filter_map (fun (e : Workload.Events.t) ->
           match e.action with
           | Workload.Events.Join { role; _ } -> Some role
           | _ -> None)
  in
  check Alcotest.bool "symmetric all Both" true
    (List.for_all (fun r -> r = Dgmc.Member.Both) (roles mc_sym));
  check Alcotest.bool "receiver-only all Receiver" true
    (List.for_all (fun r -> r = Dgmc.Member.Receiver) (roles mc_recv));
  let asym = roles mc_asym in
  check Alcotest.int "asymmetric has one sender" 1
    (List.length (List.filter (fun r -> r = Dgmc.Member.Sender) asym))

let test_bursty_custom_role () =
  let rng = Sim.Rng.create 3 in
  let events =
    Workload.Bursty.joins rng ~n:10 ~mc:mc_sym ~members:3 ~window:1.0
      ~role:(fun _ -> Dgmc.Member.Sender)
      ()
  in
  List.iter
    (fun (e : Workload.Events.t) ->
      match e.action with
      | Workload.Events.Join { role; _ } ->
        check Alcotest.bool "custom role" true (role = Dgmc.Member.Sender)
      | _ -> ())
    events

let test_bursty_start_offset () =
  let rng = Sim.Rng.create 4 in
  let events =
    Workload.Bursty.joins rng ~n:10 ~mc:mc_sym ~members:3 ~window:1.0 ~start:100.0 ()
  in
  List.iter
    (fun (e : Workload.Events.t) ->
      if e.time < 100.0 || e.time >= 101.0 then Alcotest.failf "bad time %f" e.time)
    events

let test_bursty_validation () =
  let rng = Sim.Rng.create 5 in
  Alcotest.check_raises "too many members"
    (Invalid_argument "Bursty.joins: bad member count") (fun () ->
      ignore (Workload.Bursty.joins rng ~n:5 ~mc:mc_sym ~members:6 ~window:1.0 ()))

let test_bursty_churn () =
  let rng = Sim.Rng.create 6 in
  let current = [ 0; 1; 2; 3 ] in
  let events =
    Workload.Bursty.churn rng ~current ~n:20 ~mc:mc_sym ~joins:3 ~leaves:2
      ~window:1.0 ()
  in
  check Alcotest.int "total events" 5 (List.length events);
  let leavers =
    List.filter_map
      (fun (e : Workload.Events.t) ->
        match e.action with
        | Workload.Events.Leave { switch; _ } -> Some switch
        | _ -> None)
      events
  in
  check Alcotest.int "leaves" 2 (List.length leavers);
  List.iter
    (fun l -> check Alcotest.bool "leaver was a member" true (List.mem l current))
    leavers;
  let joiners = joined_switches events in
  check Alcotest.int "joins" 3 (List.length joiners);
  List.iter
    (fun j ->
      check Alcotest.bool "joiner was not a member" true (not (List.mem j current)))
    joiners

let test_bursty_churn_validation () =
  let rng = Sim.Rng.create 7 in
  Alcotest.check_raises "too many leaves"
    (Invalid_argument "Bursty.churn: more leaves than members") (fun () ->
      ignore
        (Workload.Bursty.churn rng ~current:[ 0 ] ~n:5 ~mc:mc_sym ~joins:0
           ~leaves:2 ~window:1.0 ()))

(* ------------------------------------------------------------------ *)
(* Poisson *)

let test_poisson_count_and_order () =
  let rng = Sim.Rng.create 8 in
  let events =
    Workload.Poisson.membership rng ~n:20 ~mc:mc_sym ~events:30 ~mean_gap:5.0 ()
  in
  check Alcotest.int "requested count" 30 (List.length events);
  let times = List.map (fun (e : Workload.Events.t) -> e.time) events in
  check Alcotest.bool "monotone times" true (List.sort compare times = times)

let test_poisson_membership_never_dies () =
  let rng = Sim.Rng.create 9 in
  let events =
    Workload.Poisson.membership rng ~n:10 ~mc:mc_sym ~events:200 ~mean_gap:1.0 ()
  in
  (* Replay: the member set must never become empty after the first join. *)
  let members = ref [] in
  let died = ref false in
  List.iter
    (fun (e : Workload.Events.t) ->
      (match e.action with
      | Workload.Events.Join { switch; _ } ->
        members := List.sort_uniq compare (switch :: !members)
      | Workload.Events.Leave { switch; _ } ->
        members := List.filter (fun x -> x <> switch) !members
      | _ -> ());
      if !members = [] then died := true)
    events;
  check Alcotest.bool "never empty" false !died

let test_poisson_leaves_only_members () =
  let rng = Sim.Rng.create 10 in
  let events =
    Workload.Poisson.membership rng ~n:8 ~mc:mc_sym ~events:100 ~mean_gap:1.0 ()
  in
  let members = ref [] in
  List.iter
    (fun (e : Workload.Events.t) ->
      match e.action with
      | Workload.Events.Join { switch; _ } ->
        if List.mem switch !members then Alcotest.fail "double join";
        members := switch :: !members
      | Workload.Events.Leave { switch; _ } ->
        if not (List.mem switch !members) then Alcotest.fail "phantom leave";
        members := List.filter (fun x -> x <> switch) !members
      | _ -> ())
    events

let test_poisson_initial_seeds () =
  let rng = Sim.Rng.create 11 in
  let events =
    Workload.Poisson.membership rng ~n:10 ~mc:mc_sym ~events:5 ~mean_gap:1.0
      ~initial:[ 2; 5 ] ~start:7.0 ()
  in
  (* Two seed joins at exactly t = 7. *)
  let seeds = List.filter (fun (e : Workload.Events.t) -> e.time = 7.0) events in
  check Alcotest.int "seed events" 2 (List.length seeds);
  check Alcotest.int "total" 7 (List.length events)

let test_poisson_gap_scale () =
  let rng = Sim.Rng.create 12 in
  let events =
    Workload.Poisson.membership rng ~n:20 ~mc:mc_sym ~events:300 ~mean_gap:10.0 ()
  in
  let span = Workload.Events.span events in
  let mean_gap = span /. 299.0 in
  if mean_gap < 7.0 || mean_gap > 13.0 then
    Alcotest.failf "mean gap off: %f" mean_gap

(* ------------------------------------------------------------------ *)
(* Session *)

let test_session_phases () =
  let rng = Sim.Rng.create 13 in
  let phases =
    Workload.Session.lifecycle rng ~n:30 ~mc:mc_sym ~participants:8
      ~arrival_window:1.0 ~churn_events:10 ~churn_mean_gap:2.0
      ~departure_window:1.0 ()
  in
  check Alcotest.int "arrivals" 8 (List.length phases.arrivals);
  check Alcotest.int "churn" 10 (List.length phases.churn);
  (* Departures drain exactly the members alive after churn. *)
  let alive = Workload.Session.members_after (phases.arrivals @ phases.churn) in
  check Alcotest.int "departures = survivors" (List.length alive)
    (List.length phases.departures);
  (* Whole lifecycle ends with nobody. *)
  check Alcotest.(list int) "empty at the end" []
    (Workload.Session.members_after (Workload.Session.all phases))

let test_session_phase_ordering () =
  let rng = Sim.Rng.create 14 in
  let phases =
    Workload.Session.lifecycle rng ~n:30 ~mc:mc_sym ~participants:5
      ~arrival_window:1.0 ~churn_events:5 ~churn_mean_gap:2.0
      ~departure_window:1.0 ()
  in
  let max_time es =
    List.fold_left (fun a (e : Workload.Events.t) -> Float.max a e.time) 0.0 es
  in
  let min_time es =
    List.fold_left (fun a (e : Workload.Events.t) -> Float.min a e.time) infinity es
  in
  check Alcotest.bool "arrivals before churn" true
    (max_time phases.arrivals <= min_time phases.churn);
  check Alcotest.bool "churn before departures" true
    (max_time phases.churn <= min_time phases.departures)

let test_session_members_after () =
  let mk time action = { Workload.Events.time; action } in
  let events =
    [
      mk 0.0 (Workload.Events.Join { switch = 1; mc = mc_sym; role = Dgmc.Member.Both });
      mk 1.0 (Workload.Events.Join { switch = 2; mc = mc_sym; role = Dgmc.Member.Both });
      mk 2.0 (Workload.Events.Leave { switch = 1; mc = mc_sym });
    ]
  in
  check Alcotest.(list int) "replay" [ 2 ] (Workload.Session.members_after events)

let test_session_runs_to_convergence () =
  let graph = Experiments.Harness.graph_for ~seed:3 ~n:25 in
  let net = Dgmc.Protocol.create ~graph ~config:Dgmc.Config.atm_lan () in
  let rng = Sim.Rng.create 15 in
  let round = Dgmc.Config.round_length Dgmc.Config.atm_lan ~graph in
  let phases =
    Workload.Session.lifecycle rng ~n:25 ~mc:mc_sym ~participants:6
      ~arrival_window:round ~churn_events:8 ~churn_mean_gap:(10.0 *. round)
      ~departure_window:round ()
  in
  Workload.Events.apply_dgmc net (Workload.Session.all phases);
  Dgmc.Protocol.run net;
  check Alcotest.bool "full lifecycle converges" true
    (Dgmc.Protocol.converged net mc_sym)

(* ------------------------------------------------------------------ *)
(* Scenario scripts *)

let sample_script = {|
# demo
graph ring 6
config wan
mc 1 symmetric
mc 2 receiver-only

at 0    join 0 mc=1
at 0.5r join 3 mc=1
at 1r   join 2 mc=2
at 2r   linkdown 0 1
at 3r   leave 0 mc=1
|}

let test_script_parses () =
  match Workload.Script.parse sample_script with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok s ->
    check Alcotest.int "graph size" 6 (Net.Graph.n_nodes s.graph);
    check Alcotest.bool "wan config" true
      (s.config.Dgmc.Config.t_hop = Dgmc.Config.wan.Dgmc.Config.t_hop);
    check Alcotest.int "two mcs" 2 (List.length s.mcs);
    check Alcotest.int "five events" 5 (List.length s.events);
    (* Round-suffixed times scale with the round length. *)
    let round = Dgmc.Config.round_length s.config ~graph:s.graph in
    let times = List.map (fun (e : Workload.Events.t) -> e.time) s.events in
    check Alcotest.bool "round times resolved" true
      (List.mem (0.5 *. round) times && List.mem (3.0 *. round) times)

let test_script_runs_to_convergence () =
  match Workload.Script.parse sample_script with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok s ->
    let net = Workload.Script.run s in
    List.iter
      (fun mc ->
        if Dgmc.Protocol.divergence net mc <> [] then
          Alcotest.failf "script scenario diverged for %s"
            (Format.asprintf "%a" Dgmc.Mc_id.pp mc))
      s.mcs

let test_script_roles () =
  let text = {|
graph line 4
mc 1 asymmetric
at 0 join 0 mc=1 role=sender
at 0 join 3 mc=1
|} in
  match Workload.Script.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok s ->
    let roles =
      List.filter_map
        (fun (e : Workload.Events.t) ->
          match e.action with
          | Workload.Events.Join { role; _ } -> Some role
          | _ -> None)
        s.events
    in
    check Alcotest.bool "explicit sender honoured" true
      (List.mem Dgmc.Member.Sender roles);
    check Alcotest.bool "asymmetric default is receiver" true
      (List.mem Dgmc.Member.Receiver roles)

let test_script_errors () =
  let expect_error text fragment =
    match Workload.Script.parse text with
    | Ok _ -> Alcotest.failf "expected a parse error mentioning %S" fragment
    | Error msg ->
      let contains =
        let nh = String.length msg and nn = String.length fragment in
        let rec go i = i + nn <= nh && (String.sub msg i nn = fragment || go (i + 1)) in
        nn = 0 || go 0
      in
      if not contains then Alcotest.failf "error %S does not mention %S" msg fragment
  in
  expect_error "mc 1 symmetric\nat 0 join 1 mc=1" "missing 'graph'";
  expect_error "graph ring 6\nat 0 join 1 mc=9" "not declared";
  expect_error "graph ring 6\nmc 1 symmetric\nat 0 join 99 mc=1" "out of range";
  expect_error "graph ring 6\nmc 1 symmetric\nat 0 linkdown 0 3" "no link";
  expect_error "graph ring 6\nmc 1 symmetric\nat -1 join 0 mc=1" "non-negative";
  expect_error "graph ring 6\nfrobnicate" "unknown directive";
  expect_error "graph ring 6\nmc 1 teapot" "unknown MC type";
  (* Malformed key=value payloads and stray tokens. *)
  expect_error "graph ring 6\nmc 1 symmetric\nat 0 join 0 mc=banana"
    "expected an integer";
  expect_error "graph ring 6\nmc 1 symmetric\nat 0 join 0" "mc=";
  expect_error "graph ring 6\nmc 1 symmetric\nat 0 join 0 role=captain mc=1"
    "unknown role";
  expect_error "graph ring 6\nmc 1 symmetric\nat 0 join 0 mc=1 banana"
    "unexpected";
  expect_error "graph ring 6\nmc 1 symmetric\nat 0 linkdown 0" "linkdown";
  expect_error "graph ring 6\nmc 1 symmetric\nat zero join 0 mc=1" "time";
  (* Every diagnostic carries the offending line number. *)
  expect_error "graph ring 6\nmc 1 symmetric\nat 0 join 99 mc=1" "line 3:";
  expect_error "graph ring 6\nfrobnicate" "line 2:";
  expect_error "graph ring 6\nmc 1 symmetric\nat 0 join 0 mc=1\nat 1 linkdown 0 3"
    "line 4:"

let test_script_health_directive () =
  let text =
    {|
graph grid 3 3
mc 1 symmetric
health period=0.5r detector=phi:8:4 reup=3 damp-penalty=1 damp-suppress=2 damp-reuse=0.5 pace=1r pace-cap=4
at 0 join 0 mc=1
at 0 join 8 mc=1
at 2r linkdown 4 5
at 5r linkup 4 5
|}
  in
  match Workload.Script.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok s -> (
    match s.health with
    | None -> Alcotest.fail "health directive not picked up"
    | Some hc ->
      let round = Dgmc.Config.round_length s.config ~graph:s.graph in
      check (Alcotest.float 1e-9) "period resolved in rounds" (0.5 *. round)
        hc.Health.Config.period;
      (match hc.Health.Config.detector with
      | Health.Detector.Phi { window = 8; threshold } ->
        check (Alcotest.float 1e-9) "phi threshold" 4.0 threshold
      | _ -> Alcotest.fail "detector spec not honoured");
      check Alcotest.int "reup" 3 hc.Health.Config.reup;
      (match hc.Health.Config.damping with
      | Some d ->
        check (Alcotest.float 1e-9) "suppress" 2.0 d.Health.Config.d_suppress
      | None -> Alcotest.fail "damp-* keys must enable damping");
      (match hc.Health.Config.pacing with
      | Some p ->
        check (Alcotest.float 1e-9) "pace interval" round
          p.Health.Config.p_min_interval;
        check Alcotest.int "pace cap" 4 p.Health.Config.p_cap
      | None -> Alcotest.fail "pace= must enable pacing");
      check Alcotest.bool "derived horizon past the last event" true
        (hc.Health.Config.horizon > 5.0 *. round);
      (* The layer is actually engaged and the run converges. *)
      let net = Workload.Script.run s in
      (match Dgmc.Protocol.health_summary net with
      | None -> Alcotest.fail "built protocol has no health layer"
      | Some h ->
        check Alcotest.int "no false positive" 0
          h.Dgmc.Protocol.h_false_positives;
        check Alcotest.bool "failure detected" true
          (h.Dgmc.Protocol.h_detections > 0));
      List.iter
        (fun mc ->
          if Dgmc.Protocol.divergence net mc <> [] then
            Alcotest.failf "health scenario diverged for %s"
              (Format.asprintf "%a" Dgmc.Mc_id.pp mc))
        s.mcs)

(* The acceptance gate the CI health job scripts: the two churny shipped
   scenarios still converge when the harness withholds scripted link
   notifications and the detectors must discover everything — under the
   runtime invariant monitor, with zero false positives and every
   detection inside the configured bound. *)
let test_shipped_scenarios_with_detectors () =
  let scenario_dir =
    List.find Sys.file_exists [ "../scenarios"; "scenarios" ]
  in
  List.iter
    (fun file ->
      let path = Filename.concat scenario_dir file in
      match Workload.Script.load path with
      | Error e -> Alcotest.failf "%s: %s" file e
      | Ok s ->
        let d =
          match
            Workload.Script.health_of_args ~line:0
              [ "period=0.5r"; "detector=k:3" ]
          with
          | Ok d -> d
          | Error e -> Alcotest.failf "health args: %s" e
        in
        let hc =
          Workload.Script.health_config ~graph:s.graph ~config:s.config
            ~last_event:(Workload.Script.last_event_time s.events)
            d
        in
        let s = { s with Workload.Script.health = Some hc } in
        let net = Workload.Script.build s in
        let monitor = Check.Monitor.attach net in
        Dgmc.Protocol.run net;
        Check.Monitor.check_terminal monitor;
        (match Check.Monitor.violations monitor with
        | [] -> ()
        | vs ->
          Alcotest.failf "%s: monitor violations under detectors:\n%s" file
            (String.concat "\n" vs));
        (match Dgmc.Protocol.health_summary net with
        | None -> Alcotest.failf "%s: health layer not engaged" file
        | Some h ->
          check Alcotest.int
            (file ^ ": zero false positives")
            0 h.Dgmc.Protocol.h_false_positives;
          List.iter
            (fun l ->
              check Alcotest.bool
                (file ^ ": detection within bound")
                true
                (l <= h.Dgmc.Protocol.h_bound))
            h.Dgmc.Protocol.h_latencies);
        List.iter
          (fun mc ->
            if Dgmc.Protocol.divergence net mc <> [] then
              Alcotest.failf "%s: diverged for %s under detectors" file
                (Format.asprintf "%a" Dgmc.Mc_id.pp mc))
          s.mcs)
    [ "failure_recovery.dgmc"; "churn_storm.dgmc" ]

let () =
  Alcotest.run "workload"
    [
      ( "events",
        [
          Alcotest.test_case "stable sort" `Quick test_events_sort_stable;
          Alcotest.test_case "counts and span" `Quick test_events_counts_and_span;
          Alcotest.test_case "mcs listing" `Quick test_events_mcs;
          Alcotest.test_case "apply to dgmc" `Quick test_events_apply_dgmc;
        ] );
      ( "bursty",
        [
          Alcotest.test_case "join burst shape" `Quick test_bursty_joins_shape;
          Alcotest.test_case "roles by MC kind" `Quick test_bursty_roles_by_kind;
          Alcotest.test_case "custom roles" `Quick test_bursty_custom_role;
          Alcotest.test_case "start offset" `Quick test_bursty_start_offset;
          Alcotest.test_case "validation" `Quick test_bursty_validation;
          Alcotest.test_case "churn" `Quick test_bursty_churn;
          Alcotest.test_case "churn validation" `Quick test_bursty_churn_validation;
        ] );
      ( "poisson",
        [
          Alcotest.test_case "count and order" `Quick test_poisson_count_and_order;
          Alcotest.test_case "membership never dies" `Quick
            test_poisson_membership_never_dies;
          Alcotest.test_case "leaves only members" `Quick
            test_poisson_leaves_only_members;
          Alcotest.test_case "initial seeds" `Quick test_poisson_initial_seeds;
          Alcotest.test_case "gap scale" `Quick test_poisson_gap_scale;
        ] );
      ( "session",
        [
          Alcotest.test_case "phases" `Quick test_session_phases;
          Alcotest.test_case "phase ordering" `Quick test_session_phase_ordering;
          Alcotest.test_case "members_after" `Quick test_session_members_after;
          Alcotest.test_case "lifecycle converges" `Quick
            test_session_runs_to_convergence;
        ] );
      ( "script",
        [
          Alcotest.test_case "parses" `Quick test_script_parses;
          Alcotest.test_case "runs to convergence" `Quick
            test_script_runs_to_convergence;
          Alcotest.test_case "roles" `Quick test_script_roles;
          Alcotest.test_case "errors" `Quick test_script_errors;
          Alcotest.test_case "health directive" `Quick
            test_script_health_directive;
          Alcotest.test_case "shipped scenarios under detectors" `Quick
            test_shipped_scenarios_with_detectors;
        ] );
    ]
