(* Corpus test: every scenario script shipped in scenarios/ must parse,
   lint clean, run to quiescence under the runtime invariant monitor,
   and leave every declared MC in network-wide agreement.  (The dune
   rule passes the directory as a dependency.) *)

(* dune runtest executes in _build/default/test; `dune exec` from the
   project root.  Accept both. *)
let scenario_dir =
  List.find Sys.file_exists [ "../scenarios"; "scenarios" ]

let scenario_files () =
  Sys.readdir scenario_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".dgmc")
  |> List.sort compare

let run_scenario file () =
  let path = Filename.concat scenario_dir file in
  (match Check.Scenario_lint.lint_file path with
  | Stdlib.Error msg -> Alcotest.failf "%s: %s" file msg
  | Stdlib.Ok diags ->
    if Check.Scenario_lint.errors diags > 0 then
      Alcotest.failf "%s: lint errors:\n%s" file
        (String.concat "\n"
           (List.map (Check.Scenario_lint.render ~file) diags)));
  match Workload.Script.load path with
  | Error msg -> Alcotest.failf "%s: parse error: %s" file msg
  | Ok script ->
    let net = Workload.Script.build script in
    let monitor = Check.Monitor.attach net in
    Dgmc.Protocol.run net;
    Check.Monitor.check_terminal monitor;
    Check.Monitor.assert_ok monitor;
    List.iter
      (fun mc ->
        match Dgmc.Protocol.divergence net mc with
        | [] -> ()
        | reasons ->
          Alcotest.failf "%s: %s diverged: %s" file
            (Format.asprintf "%a" Dgmc.Mc_id.pp mc)
            (String.concat "; " reasons))
      script.mcs;
    (* Every scenario must actually exercise something. *)
    let totals = Dgmc.Protocol.totals net in
    if totals.events = 0 then Alcotest.failf "%s: no events" file

let () =
  let files = scenario_files () in
  if files = [] then failwith "no scenario files found";
  Alcotest.run "scenarios"
    [
      ( "corpus",
        List.map (fun f -> Alcotest.test_case f `Quick (run_scenario f)) files );
    ]
