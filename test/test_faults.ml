(* Tests for the fault-injection layer (lib/faults): determinism of the
   seeded fault stream, counter/rate agreement on large samples, and the
   semantics of scheduled crash and partition windows. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Determinism *)

(* Drive a plan through a fixed pseudo-workload of transmissions and
   return everything observable. *)
let drive plan =
  let deliveries = ref [] in
  for i = 0 to 999 do
    let src = i mod 7 and dst = (i + 1) mod 7 in
    let now = float_of_int i *. 0.25 in
    let copies = Faults.Plan.transmit plan ~src ~dst ~now ~base_delay:1.0 in
    deliveries := (i, copies) :: !deliveries
  done;
  (List.rev !deliveries, Faults.Plan.counters plan, Faults.Plan.trace plan)

let lossy_spec =
  {
    Faults.Plan.drop = 0.2;
    duplicate = 0.15;
    reorder = 0.1;
    reorder_span = 4.0;
    jitter = 0.5;
  }

let test_same_seed_same_trace () =
  let run () = drive (Faults.Plan.create ~spec:lossy_spec ~seed:7 ()) in
  let d1, c1, t1 = run () in
  let d2, c2, t2 = run () in
  check Alcotest.bool "identical delivery decisions" true (d1 = d2);
  check Alcotest.bool "identical counters" true (c1 = c2);
  check Alcotest.bool "identical fault trace" true (t1 = t2);
  check Alcotest.bool "faults actually fired" true
    (c1.Faults.Plan.dropped > 0 && c1.duplicated > 0 && t1 <> [])

let test_different_seed_different_trace () =
  let _, _, t1 = drive (Faults.Plan.create ~spec:lossy_spec ~seed:7 ()) in
  let _, _, t2 = drive (Faults.Plan.create ~spec:lossy_spec ~seed:8 ()) in
  check Alcotest.bool "seeds decorrelate the stream" true (t1 <> t2)

(* ------------------------------------------------------------------ *)
(* Rates *)

let test_counters_match_rates () =
  let spec = { lossy_spec with drop = 0.3; duplicate = 0.2; reorder = 0.0 } in
  let plan = Faults.Plan.create ~spec ~seed:42 () in
  let n = 200_000 in
  for i = 0 to n - 1 do
    ignore
      (Faults.Plan.transmit plan ~src:0 ~dst:1 ~now:(float_of_int i)
         ~base_delay:1.0)
  done;
  let c = Faults.Plan.counters plan in
  let rate count = float_of_int count /. float_of_int n in
  check Alcotest.int "every call counted" n c.Faults.Plan.transmissions;
  check (Alcotest.float 0.01) "drop rate" 0.3 (rate c.dropped);
  (* Duplication only applies to transmissions that survive the drop. *)
  check (Alcotest.float 0.01) "duplicate rate" (0.2 *. 0.7) (rate c.duplicated);
  check Alcotest.int "delivered = kept + duplicates"
    (n - c.dropped + c.duplicated)
    c.delivered

(* Per-link totals are exact, directed, sorted, and sum to the
   aggregate counters — the invariant dgmc_report's per-link fault
   table relies on. *)
let test_link_counters_sum_to_aggregate () =
  let plan = Faults.Plan.create ~spec:lossy_spec ~seed:11 () in
  Faults.Plan.crash_switch plan ~switch:3 ~from_:10.0 ~until:40.0;
  for i = 0 to 4_999 do
    let src = i mod 5 and dst = (i + 1 + (i mod 3)) mod 5 in
    if src <> dst then
      ignore
        (Faults.Plan.transmit plan ~src ~dst ~now:(float_of_int i *. 0.05)
           ~base_delay:1.0)
  done;
  let agg = Faults.Plan.counters plan in
  let per_link = Faults.Plan.link_counters plan in
  check Alcotest.bool "several links recorded" true (List.length per_link > 1);
  let sum f = List.fold_left (fun acc (_, lc) -> acc + f lc) 0 per_link in
  check Alcotest.int "transmissions sum" agg.Faults.Plan.transmissions
    (sum (fun lc -> lc.Faults.Plan.l_transmissions));
  check Alcotest.int "drops sum" agg.dropped
    (sum (fun lc -> lc.Faults.Plan.l_dropped));
  check Alcotest.int "duplicates sum" agg.duplicated
    (sum (fun lc -> lc.Faults.Plan.l_duplicated));
  check Alcotest.int "reorders sum" agg.reordered
    (sum (fun lc -> lc.Faults.Plan.l_reordered));
  let blocked = sum (fun lc -> lc.Faults.Plan.l_blocked) in
  check Alcotest.bool "crash window blocked some transmissions" true
    (blocked > 0);
  (* Directed: traffic flowed both ways on some pair, and the two
     directions are distinct keys. *)
  check Alcotest.bool "directed keys" true
    (List.exists
       (fun ((a, b), _) -> List.mem_assoc (b, a) per_link)
       per_link);
  let keys = List.map fst per_link in
  let sorted =
    List.sort
      (fun (a, b) (c, d) ->
        match Int.compare a c with 0 -> Int.compare b d | n -> n)
      keys
  in
  check Alcotest.bool "sorted output" true (keys = sorted)

let test_transparent_plan_is_invisible () =
  let plan = Faults.Plan.create ~seed:1 () in
  for i = 0 to 99 do
    check
      Alcotest.(list (float 1e-9))
      "exactly the base delay" [ 2.5 ]
      (Faults.Plan.transmit plan ~src:0 ~dst:1 ~now:(float_of_int i)
         ~base_delay:2.5)
  done;
  let c = Faults.Plan.counters plan in
  check Alcotest.int "nothing dropped" 0 c.Faults.Plan.dropped;
  check Alcotest.int "no trace" 0 (List.length (Faults.Plan.trace plan))

(* ------------------------------------------------------------------ *)
(* Scheduled windows *)

let lost plan ~src ~dst ~now =
  Faults.Plan.transmit plan ~src ~dst ~now ~base_delay:1.0 = []

let test_partition_severs_both_ways () =
  let plan = Faults.Plan.create ~seed:3 () in
  Faults.Plan.partition plan ~side:[ 0; 1 ] ~from_:10.0 ~until:20.0;
  (* Inside the window: side <-> rest blocked in both directions. *)
  check Alcotest.bool "side -> rest blocked" true
    (lost plan ~src:0 ~dst:5 ~now:15.0);
  check Alcotest.bool "rest -> side blocked" true
    (lost plan ~src:5 ~dst:0 ~now:15.0);
  (* Within one side, traffic flows. *)
  check Alcotest.bool "within side ok" false (lost plan ~src:0 ~dst:1 ~now:15.0);
  check Alcotest.bool "within rest ok" false (lost plan ~src:4 ~dst:5 ~now:15.0);
  (* Outside the window, everything flows. *)
  check Alcotest.bool "before window ok" false (lost plan ~src:0 ~dst:5 ~now:9.9);
  check Alcotest.bool "after window ok" false (lost plan ~src:5 ~dst:0 ~now:20.0);
  let c = Faults.Plan.counters plan in
  check Alcotest.int "both blocks counted" 2 c.Faults.Plan.blocked_partition;
  check (Alcotest.float 1e-9) "quiescent after the window" 20.0
    (Faults.Plan.quiescent_after plan)

let test_crash_blocks_to_and_from () =
  let plan = Faults.Plan.create ~seed:3 () in
  Faults.Plan.crash_switch plan ~switch:2 ~from_:5.0 ~until:8.0;
  check Alcotest.bool "to the crashed switch" true
    (lost plan ~src:0 ~dst:2 ~now:6.0);
  check Alcotest.bool "from the crashed switch" true
    (lost plan ~src:2 ~dst:0 ~now:6.0);
  check Alcotest.bool "bystanders unaffected" false
    (lost plan ~src:0 ~dst:1 ~now:6.0);
  check Alcotest.bool "recovers at window close" false
    (lost plan ~src:0 ~dst:2 ~now:8.0);
  check Alcotest.int "blocks counted" 2
    (Faults.Plan.counters plan).Faults.Plan.blocked_crash

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

let test_spec_round_trip () =
  let spec =
    {
      Faults.Plan.drop = 0.25;
      duplicate = 0.1;
      reorder = 0.05;
      reorder_span = 3.0;
      jitter = 0.75;
    }
  in
  (match Faults.Plan.spec_of_string (Faults.Plan.spec_to_string spec) with
  | Ok spec' -> check Alcotest.bool "round trip" true (spec = spec')
  | Error m -> Alcotest.failf "round trip failed: %s" m);
  (match Faults.Plan.spec_of_string "drop=0.3" with
  | Ok s ->
    check (Alcotest.float 1e-9) "other keys default" 0.0 s.Faults.Plan.jitter
  | Error m -> Alcotest.failf "partial spec rejected: %s" m);
  List.iter
    (fun bad ->
      match Faults.Plan.spec_of_string bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [ "drop=1.5"; "drop=-0.1"; "jitter=-1"; "banana=1"; "drop" ]

let () =
  Alcotest.run "faults"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same trace" `Quick
            test_same_seed_same_trace;
          Alcotest.test_case "different seed, different trace" `Quick
            test_different_seed_different_trace;
        ] );
      ( "rates",
        [
          Alcotest.test_case "counters match configured rates" `Quick
            test_counters_match_rates;
          Alcotest.test_case "link counters sum to aggregate" `Quick
            test_link_counters_sum_to_aggregate;
          Alcotest.test_case "transparent plan is invisible" `Quick
            test_transparent_plan_is_invisible;
        ] );
      ( "windows",
        [
          Alcotest.test_case "partition severs both ways" `Quick
            test_partition_severs_both_ways;
          Alcotest.test_case "crash blocks to and from" `Quick
            test_crash_blocks_to_and_from;
        ] );
      ( "spec",
        [ Alcotest.test_case "parse and render" `Quick test_spec_round_trip ] );
    ]
