(* Tests for the statistics and table-rendering library (lib/metrics). *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_mean () =
  check Alcotest.(float 1e-9) "mean" 2.5 (Metrics.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check Alcotest.(float 1e-9) "singleton" 7.0 (Metrics.Stats.mean [ 7.0 ])

let test_stddev () =
  (* Sample of [2, 4, 4, 4, 5, 5, 7, 9]: mean 5, sum of squares 32,
     sample variance 32/7. *)
  let xs = [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  check Alcotest.(float 1e-9) "sample stddev"
    (sqrt (32.0 /. 7.0))
    (Metrics.Stats.stddev xs);
  check Alcotest.(float 1e-9) "singleton stddev" 0.0 (Metrics.Stats.stddev [ 3.0 ])

let test_t_critical () =
  check Alcotest.(float 1e-3) "df=1" 12.706 (Metrics.Stats.t_critical 1);
  check Alcotest.(float 1e-3) "df=9 (10 samples)" 2.262 (Metrics.Stats.t_critical 9);
  check Alcotest.(float 1e-3) "df=30" 2.042 (Metrics.Stats.t_critical 30);
  check Alcotest.(float 1e-3) "asymptote" 1.96 (Metrics.Stats.t_critical 200);
  Alcotest.check_raises "df=0" (Invalid_argument "Stats.t_critical: df must be >= 1")
    (fun () -> ignore (Metrics.Stats.t_critical 0))

let test_summarize () =
  let s = Metrics.Stats.summarize [ 1.0; 2.0; 3.0 ] in
  check Alcotest.int "n" 3 s.n;
  check Alcotest.(float 1e-9) "mean" 2.0 s.mean;
  check Alcotest.(float 1e-9) "stddev" 1.0 s.stddev;
  (* ci = t(2) * 1 / sqrt 3 = 4.303 / 1.732... *)
  check Alcotest.(float 1e-3) "ci95" (4.303 /. sqrt 3.0) s.ci95

let test_summarize_singleton () =
  let s = Metrics.Stats.summarize [ 5.0 ] in
  check Alcotest.(float 1e-9) "no interval" 0.0 s.ci95

let test_summarize_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Metrics.Stats.summarize []))

let test_summarize_constant_sample () =
  let s = Metrics.Stats.summarize [ 4.0; 4.0; 4.0; 4.0 ] in
  check Alcotest.(float 1e-9) "zero spread" 0.0 s.ci95;
  check Alcotest.(float 1e-9) "mean" 4.0 s.mean

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check Alcotest.(float 1e-9) "p0" 1.0 (Metrics.Stats.percentile xs 0.0);
  check Alcotest.(float 1e-9) "p50" 3.0 (Metrics.Stats.percentile xs 50.0);
  check Alcotest.(float 1e-9) "p100" 5.0 (Metrics.Stats.percentile xs 100.0);
  check Alcotest.(float 1e-9) "p25 interpolates" 2.0 (Metrics.Stats.percentile xs 25.0);
  check Alcotest.(float 1e-9) "p10 interpolates" 1.4 (Metrics.Stats.percentile xs 10.0);
  (* Unsorted input is handled. *)
  check Alcotest.(float 1e-9) "unsorted" 3.0
    (Metrics.Stats.percentile [ 5.0; 1.0; 3.0; 2.0; 4.0 ] 50.0)

let test_percentile_validation () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Metrics.Stats.percentile [ 1.0 ] 101.0))

let test_pp_summary () =
  let s = Metrics.Stats.summarize [ 1.0; 2.0; 3.0 ] in
  let str = Format.asprintf "%a" Metrics.Stats.pp_summary s in
  check Alcotest.bool "format" true (String.length str > 0 && String.contains str '-' = false)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_counters () =
  let r = Metrics.Registry.create () in
  check Alcotest.bool "fresh registry is empty" true (Metrics.Registry.is_empty r);
  Metrics.Registry.incr r "a";
  Metrics.Registry.incr r ~by:4 "a";
  Metrics.Registry.incr r ~switch:3 "a";
  check Alcotest.int "aggregate cell" 5 (Metrics.Registry.counter_value r "a");
  check Alcotest.int "labelled cell is separate" 1
    (Metrics.Registry.counter_value r ~switch:3 "a");
  check Alcotest.int "absent counter reads 0" 0
    (Metrics.Registry.counter_value r "never");
  Metrics.Registry.set_gauge r "g" 2.5;
  check Alcotest.(option (float 1e-9)) "gauge" (Some 2.5)
    (Metrics.Registry.gauge_value r "g");
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics.Registry: a is a counter, not a gauge")
    (fun () -> Metrics.Registry.set_gauge r "a" 1.0)

(* The log-scale histogram's percentiles vs the exact sorted-sample
   oracle (Metrics.Stats.percentile): geometric buckets with ratio
   2^(1/8) put any quantile within ~4.4% of the true value; allow 10%. *)
let test_histogram_vs_oracle () =
  let rng = Sim.Rng.create 42 in
  let samples =
    (* span several orders of magnitude, the histogram's hard case *)
    List.init 5000 (fun _ -> exp (Sim.Rng.float rng 10.0) /. 100.0)
  in
  let r = Metrics.Registry.create () in
  List.iter (fun v -> Metrics.Registry.observe r "h" v) samples;
  let h = Option.get (Metrics.Registry.histogram_stats r "h") in
  check Alcotest.int "count" 5000 h.h_count;
  check Alcotest.(float 1e-6) "sum is exact"
    (List.fold_left ( +. ) 0.0 samples)
    h.h_sum;
  check Alcotest.(float 1e-9) "min is exact"
    (List.fold_left Float.min Float.infinity samples)
    h.h_min;
  check Alcotest.(float 1e-9) "max is exact"
    (List.fold_left Float.max Float.neg_infinity samples)
    h.h_max;
  List.iter
    (fun (q, est) ->
      let oracle = Metrics.Stats.percentile samples (100.0 *. q) in
      let rel = Float.abs (est -. oracle) /. oracle in
      if rel > 0.10 then
        Alcotest.failf "q=%.2f: histogram %g vs oracle %g (rel err %.3f)" q
          est oracle rel)
    [ (0.50, h.h_p50); (0.90, h.h_p90); (0.99, h.h_p99) ];
  (* arbitrary quantiles too *)
  List.iter
    (fun q ->
      let est = Option.get (Metrics.Registry.quantile r "h" q) in
      let oracle = Metrics.Stats.percentile samples (100.0 *. q) in
      let rel = Float.abs (est -. oracle) /. oracle in
      if rel > 0.10 then
        Alcotest.failf "q=%.2f: %g vs oracle %g (rel err %.3f)" q est oracle rel)
    [ 0.10; 0.25; 0.75; 0.95 ]

let test_histogram_edge_cases () =
  let r = Metrics.Registry.create () in
  check Alcotest.bool "missing histogram" true
    (Metrics.Registry.histogram_stats r "h" = None);
  Metrics.Registry.observe r "h" 0.0;
  Metrics.Registry.observe r "h" (-3.0);
  Metrics.Registry.observe r "h" 5.0;
  let h = Option.get (Metrics.Registry.histogram_stats r "h") in
  check Alcotest.int "nonpositive samples counted" 3 h.h_count;
  check Alcotest.(float 1e-9) "min" (-3.0) h.h_min;
  check Alcotest.(float 1e-9) "max" 5.0 h.h_max;
  (* quantiles stay clamped into [min, max] *)
  let q0 = Option.get (Metrics.Registry.quantile r "h" 0.0) in
  let q1 = Option.get (Metrics.Registry.quantile r "h" 1.0) in
  check Alcotest.bool "clamped" true (q0 >= -3.0 && q1 <= 5.0)

let test_snapshot_deterministic () =
  let r = Metrics.Registry.create () in
  Metrics.Registry.incr r ~switch:2 "z";
  Metrics.Registry.incr r "z";
  Metrics.Registry.incr r ~switch:1 "z";
  Metrics.Registry.incr r "a";
  let s = Metrics.Registry.snapshot r in
  let keys =
    List.map
      (fun ((k : Metrics.Registry.key), _) -> (k.name, k.switch))
      s.counters
  in
  check
    Alcotest.(list (pair string (option int)))
    "sorted by name then label (aggregate first)"
    [ ("a", None); ("z", None); ("z", Some 1); ("z", Some 2) ]
    keys;
  (* snapshot_json is valid JSON with the three arrays *)
  match Sim.Json.parse (Metrics.Registry.snapshot_json s) with
  | Error e -> Alcotest.failf "snapshot_json does not parse: %s" e
  | Ok j ->
    List.iter
      (fun k ->
        match Sim.Json.member k j with
        | Some (Sim.Json.Arr _) -> ()
        | _ -> Alcotest.failf "missing %s array" k)
      [ "counters"; "gauges"; "histograms" ]

(* ------------------------------------------------------------------ *)
(* Table *)

let test_cell_f_trims () =
  check Alcotest.string "trims zeros" "1.5" (Metrics.Table.cell_f 1.5);
  check Alcotest.string "keeps one decimal" "2.0" (Metrics.Table.cell_f 2.0);
  check Alcotest.string "three decimals kept" "0.125" (Metrics.Table.cell_f 0.125)

let test_cell_ci () =
  check Alcotest.string "format" "3.0 ± 0.5" (Metrics.Table.cell_ci ~mean:3.0 ~ci:0.5)

let test_render_layout () =
  let out =
    Metrics.Table.render ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "10"; "200" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "header + rule + 2 rows" 4 (List.length lines);
  (* All lines are equally wide. *)
  let widths = List.map String.length lines in
  check Alcotest.bool "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_render_missing_cells () =
  let out = Metrics.Table.render ~headers:[ "x"; "y"; "z" ] [ [ "1" ] ] in
  check Alcotest.bool "renders" true (String.length out > 0)

let test_render_alignment () =
  let out =
    Metrics.Table.render
      ~align:[ Metrics.Table.Left; Metrics.Table.Right ]
      ~headers:[ "name"; "val" ]
      [ [ "ab"; "1" ] ]
  in
  let lines = String.split_on_char '\n' out in
  let row = List.nth lines 2 in
  check Alcotest.bool "left-aligned first column" true (row.[0] <> ' ');
  check Alcotest.bool "right-aligned last column" true
    (row.[String.length row - 1] <> ' ')

(* ------------------------------------------------------------------ *)
(* CSV *)

let test_csv_escape () =
  check Alcotest.string "plain" "abc" (Metrics.Csv.escape "abc");
  check Alcotest.string "comma" "\"a,b\"" (Metrics.Csv.escape "a,b");
  check Alcotest.string "quote doubled" "\"a\"\"b\"" (Metrics.Csv.escape "a\"b");
  check Alcotest.string "newline" "\"a\nb\"" (Metrics.Csv.escape "a\nb")

let test_csv_render () =
  let out =
    Metrics.Csv.render ~headers:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4,5" ] ]
  in
  check Alcotest.string "document" "x,y\n1,2\n3,\"4,5\"\n" out

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "dgmc" ".csv" in
  Metrics.Csv.write ~path ~headers:[ "a" ] [ [ "1" ]; [ "2" ] ];
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check Alcotest.string "file content" "a\n1\n2\n" content

let test_owner_domain_guard () =
  let r = Metrics.Registry.create () in
  Metrics.Registry.incr r "ok.from.owner";
  (* Mutating from a spawned domain must raise; reading back on the
     owner still works and the foreign write left no trace. *)
  let outcome =
    Domain.join
      (Domain.spawn (fun () ->
           match Metrics.Registry.incr r "bad.from.worker" with
           | () -> `No_raise
           | exception Invalid_argument _ -> `Raised))
  in
  (match outcome with
  | `Raised -> ()
  | `No_raise -> Alcotest.fail "cross-domain incr did not raise");
  check Alcotest.int "owner counter survives" 1
    (Metrics.Registry.counter_value r "ok.from.owner");
  check Alcotest.int "foreign counter absent" 0
    (Metrics.Registry.counter_value r "bad.from.worker")

let () =
  Alcotest.run "metrics"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "t critical values" `Quick test_t_critical;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "summarize singleton" `Quick test_summarize_singleton;
          Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
          Alcotest.test_case "constant sample" `Quick test_summarize_constant_sample;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile validation" `Quick
            test_percentile_validation;
          Alcotest.test_case "pp_summary" `Quick test_pp_summary;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick test_registry_counters;
          Alcotest.test_case "histogram vs percentile oracle" `Quick
            test_histogram_vs_oracle;
          Alcotest.test_case "histogram edge cases" `Quick
            test_histogram_edge_cases;
          Alcotest.test_case "snapshot determinism" `Quick
            test_snapshot_deterministic;
          Alcotest.test_case "owner-domain guard" `Quick
            test_owner_domain_guard;
        ] );
      ( "table",
        [
          Alcotest.test_case "cell_f trimming" `Quick test_cell_f_trims;
          Alcotest.test_case "cell_ci" `Quick test_cell_ci;
          Alcotest.test_case "layout" `Quick test_render_layout;
          Alcotest.test_case "missing cells" `Quick test_render_missing_cells;
          Alcotest.test_case "alignment" `Quick test_render_alignment;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escape;
          Alcotest.test_case "render" `Quick test_csv_render;
          Alcotest.test_case "write roundtrip" `Quick test_csv_write_roundtrip;
        ] );
    ]
