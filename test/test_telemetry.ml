(* Flight-recorder telemetry: Series bucketing against hand-computed
   oracles, SLI sessionization, Phase attribution, zero-cost disabled
   paths, per-domain Registry merging through the pool, and the
   bench-diff regression gate. *)

open Alcotest

let feps = float 1e-9

(* ------------------------------------------------------------------ *)
(* Series: bucketing oracle *)

let line_exn series name =
  match
    List.find_opt
      (fun (l : Metrics.Series.line) -> l.l_name = name)
      (Metrics.Series.lines series)
  with
  | Some l -> l
  | None -> failf "no series line named %s" name

let test_series_bucketing () =
  let s = Metrics.Series.create ~bucket:0.5 ~cap:4 () in
  Metrics.Series.add s ~name:"x" ~time:0.2 1.0;
  Metrics.Series.add s ~name:"x" ~time:0.3 3.0;
  Metrics.Series.add s ~name:"x" ~time:0.6 5.0;
  let l = line_exn s "x" in
  check int "two buckets" 2 (List.length l.l_points);
  let b0 = List.nth l.l_points 0 in
  check int "bucket 0 index" 0 b0.p_bucket;
  check feps "bucket 0 start" 0.0 b0.p_time;
  check int "bucket 0 count" 2 b0.p_count;
  check feps "bucket 0 sum" 4.0 b0.p_sum;
  check feps "bucket 0 min" 1.0 b0.p_min;
  check feps "bucket 0 max" 3.0 b0.p_max;
  check feps "bucket 0 last" 3.0 b0.p_last;
  let b1 = List.nth l.l_points 1 in
  check int "bucket 1 index" 1 b1.p_bucket;
  check int "bucket 1 count" 1 b1.p_count;
  check feps "bucket 1 last" 5.0 b1.p_last

let test_series_eviction_and_late () =
  let s = Metrics.Series.create ~bucket:0.5 ~cap:4 () in
  Metrics.Series.add s ~name:"x" ~time:0.2 1.0;
  (* Bucket 4 shares slot 0 with bucket 0 in a cap-4 ring: the old
     bucket falls out of the window and must be counted as evicted. *)
  Metrics.Series.add s ~name:"x" ~time:2.2 7.0;
  (* Bucket 0 is now older than anything the window can hold. *)
  Metrics.Series.add s ~name:"x" ~time:0.4 9.0;
  let l = line_exn s "x" in
  check int "one eviction" 1 l.l_evicted;
  check int "one late sample" 1 l.l_late;
  check (list int) "retained buckets" [ 4 ]
    (List.map (fun (p : Metrics.Series.point) -> p.p_bucket) l.l_points);
  let b = List.nth l.l_points 0 in
  check int "evictor count" 1 b.p_count;
  check feps "evictor sum (late sample dropped)" 7.0 b.p_sum

let test_series_per_switch_keys () =
  let s = Metrics.Series.create ~bucket:1.0 ~cap:8 () in
  Metrics.Series.add s ~name:"x" ~switch:2 ~time:0.0 1.0;
  Metrics.Series.add s ~name:"x" ~time:0.0 2.0;
  Metrics.Series.add s ~name:"x" ~switch:1 ~time:0.0 3.0;
  let switches =
    List.map
      (fun (l : Metrics.Series.line) -> l.l_switch)
      (Metrics.Series.lines s)
  in
  (* Aggregate (no switch) first, then switches ascending. *)
  check
    (list (option int))
    "key order" [ None; Some 1; Some 2 ] switches

(* ------------------------------------------------------------------ *)
(* SLI: sessionization oracle *)

let obs =
  [
    (* MC a: one converged window, then an unconverged one after a gap *)
    Metrics.Sli.anchor ~mc:"a" ~time:0.0;
    Metrics.Sli.control ~mc:"a" ~time:0.1;
    Metrics.Sli.control ~mc:"a" ~time:0.2;
    Metrics.Sli.install ~mc:"a" ~time:0.3;
    Metrics.Sli.anchor ~mc:"a" ~time:5.0;
    Metrics.Sli.control ~mc:"a" ~time:5.1;
    (* MC b: control before the anchor must not count *)
    Metrics.Sli.control ~mc:"b" ~time:0.0;
    Metrics.Sli.anchor ~mc:"b" ~time:0.1;
    Metrics.Sli.install ~mc:"b" ~time:0.5;
    Metrics.Sli.install ~mc:"b" ~time:0.9;
  ]

let test_sli_windows_oracle () =
  let ws = Metrics.Sli.windows ~gap:1.0 obs in
  check int "three windows" 3 (List.length ws);
  let w mc i =
    List.nth (List.filter (fun w -> w.Metrics.Sli.w_mc = mc) ws) i
  in
  let a0 = w "a" 0 in
  check feps "a0 start" 0.0 a0.w_start;
  check feps "a0 end" 0.3 a0.w_end;
  check int "a0 anchors" 1 a0.w_anchors;
  check int "a0 installs" 1 a0.w_installs;
  check int "a0 control" 2 a0.w_control;
  check feps "a0 latency" 0.3 (Metrics.Sli.latency a0);
  let a1 = w "a" 1 in
  check bool "a1 unconverged" false (Metrics.Sli.converged a1);
  check feps "a1 latency" 0.0 (Metrics.Sli.latency a1);
  check int "a1 control" 1 a1.w_control;
  let b0 = w "b" 0 in
  check feps "b0 start (first anchor)" 0.1 b0.w_start;
  check feps "b0 end (last install)" 0.9 b0.w_end;
  check int "b0 installs" 2 b0.w_installs;
  check int "b0 control excludes pre-anchor" 0 b0.w_control

let test_sli_summary_oracle () =
  let s = Metrics.Sli.summarize ~gap:1.0 obs in
  check int "unconverged count" 1 s.s_unconverged;
  (* Latency over converged windows only: [0.3; 0.8]. *)
  check int "latency count" 2 s.s_latency.d_count;
  check feps "latency mean" 0.55 s.s_latency.d_mean;
  check feps "latency p50 (linear interpolation)" 0.55 s.s_latency.d_p50;
  check feps "latency p90" 0.75 s.s_latency.d_p90;
  check feps "latency max" 0.8 s.s_latency.d_max;
  (* Control over all windows: [2; 1; 0]. *)
  check int "control count" 3 s.s_control.d_count;
  check feps "control mean" 1.0 s.s_control.d_mean;
  check feps "control max" 2.0 s.s_control.d_max

let test_sli_of_scripted_run () =
  let trace = Sim.Trace.create () in
  ignore
    (Experiments.Harness.bursty_run ~trace ~seed:7 ~n:10
       ~config:Dgmc.Config.atm_lan ~members:5 ());
  let entries = Sim.Trace.entries trace in
  let sli_obs = Report.Run_report.sli_of_trace entries in
  (* A gap wider than the whole run keeps each MC in one session, so
     window totals must equal whole-trace totals. *)
  let gap = Report.Run_report.span entries +. 1.0 in
  let s = Metrics.Sli.summarize ~gap sli_obs in
  check int "one window per MC" 1 (List.length s.s_windows);
  let w = List.nth s.s_windows 0 in
  check bool "burst converged" true (Metrics.Sli.converged w);
  let installs_in_trace =
    List.length
      (List.filter
         (fun (e : Sim.Trace.entry) ->
           match e.event with
           | Sim.Trace.Topology_installed i -> i.mc <> ""
           | _ -> false)
         entries)
  in
  check int "window installs = trace installs" installs_in_trace w.w_installs;
  check bool "control messages counted" true (w.w_control > 0);
  check bool "positive latency" true (Metrics.Sli.latency w > 0.0)

(* ------------------------------------------------------------------ *)
(* Phase attribution *)

let test_phase_nesting () =
  let p = Metrics.Phase.create () in
  Metrics.Phase.enter p "outer";
  Metrics.Phase.enter p "inner";
  (* Many small blocks: attribution counts minor words, and one big
     array would go straight to the major heap. *)
  for _ = 1 to 1000 do
    ignore (Sys.opaque_identity (ref 1.5))
  done;
  Metrics.Phase.leave p;
  Metrics.Phase.leave p;
  let rows = Metrics.Phase.snapshot p in
  check (list string) "rows sorted by name" [ "inner"; "outer" ]
    (List.map (fun (r : Metrics.Phase.row) -> r.r_name) rows);
  let inner = List.nth rows 0 and outer = List.nth rows 1 in
  check int "inner calls" 1 inner.r_calls;
  check int "outer calls" 1 outer.r_calls;
  (* Inclusive figures roll the child into the parent... *)
  check bool "outer wall >= inner wall" true
    (outer.r_wall_s >= inner.r_wall_s);
  check bool "outer alloc >= inner alloc" true
    (outer.r_minor_words >= inner.r_minor_words);
  (* ...and self = inclusive - children. *)
  check bool "outer self wall <= outer wall" true
    (outer.r_self_wall_s <= outer.r_wall_s);
  check bool "outer self alloc excludes inner array" true
    (outer.r_self_minor_words < inner.r_minor_words);
  check bool "inner allocated the refs" true (inner.r_minor_words >= 2000.0);
  check int "balanced" 0 (Metrics.Phase.unbalanced_leaves p)

let test_phase_unbalanced_leave () =
  let p = Metrics.Phase.create () in
  Metrics.Phase.leave p;
  check int "counted, not raised" 1 (Metrics.Phase.unbalanced_leaves p);
  check int "nothing open" 0 (Metrics.Phase.depth p)

let test_phase_ambient () =
  let p = Metrics.Phase.create () in
  let seen = Metrics.Phase.with_ambient p (fun () -> Metrics.Phase.ambient ()) in
  check bool "ambient inside with_ambient" true (seen == p);
  check bool "restored after" true
    (Metrics.Phase.ambient () == Metrics.Phase.disabled)

(* ------------------------------------------------------------------ *)
(* Disabled telemetry allocates nothing *)

let test_disabled_zero_alloc () =
  let s = Metrics.Series.disabled in
  let p = Metrics.Phase.disabled in
  (* Warm up, then measure what Gc.allocated_bytes itself allocates (it
     boxes floats) so the loop's contribution comes out exact — the same
     harness test_trace uses for Sim.Trace.recordf. *)
  Metrics.Series.add s ~name:"warm" ~time:0.0 1.0;
  Metrics.Phase.enter p "warm";
  Metrics.Phase.leave p;
  let baseline =
    let a = Gc.allocated_bytes () in
    Gc.allocated_bytes () -. a
  in
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to 1000 do
    Metrics.Series.add s ~name:"no series here" ~time:1.0 2.0;
    Metrics.Phase.enter p "no phase here";
    Metrics.Phase.leave p
  done;
  let allocated = Gc.allocated_bytes () -. a0 -. baseline in
  check (float 0.0) "zero bytes over 1000 disabled records" 0.0 allocated

(* ------------------------------------------------------------------ *)
(* Registry: merge oracle and pool integration *)

let test_registry_merge_oracle () =
  let a = Metrics.Registry.create () in
  let b = Metrics.Registry.create () in
  let direct = Metrics.Registry.create () in
  let record r ~c ~samples =
    Metrics.Registry.incr r ~by:c "events";
    Metrics.Registry.incr r ~switch:3 "events";
    List.iter (Metrics.Registry.observe r "lat") samples
  in
  record a ~c:2 ~samples:[ 1.0; 4.0 ];
  record b ~c:5 ~samples:[ 2.0; 8.0; 16.0 ];
  record direct ~c:2 ~samples:[ 1.0; 4.0 ];
  record direct ~c:5 ~samples:[ 2.0; 8.0; 16.0 ];
  Metrics.Registry.set_gauge b "level" 7.0;
  Metrics.Registry.set_gauge direct "level" 7.0;
  Metrics.Registry.merge ~into:a b;
  check string "merged registry = direct recording"
    (Metrics.Registry.snapshot_json (Metrics.Registry.snapshot direct))
    (Metrics.Registry.snapshot_json (Metrics.Registry.snapshot a))

let pool_counters domains =
  let reg = Metrics.Registry.create () in
  let (_ : Experiments.Harness.run Runner.Pool.timed list), _ =
    Runner.Pool.map_registered ~domains ~metrics:reg
      (fun ?metrics seed ->
        Experiments.Harness.bursty_run ?metrics ~seed ~n:10
          ~config:Dgmc.Config.atm_lan ~members:5 ())
      [ 1; 2; 3; 4 ]
  in
  (Metrics.Registry.snapshot reg).counters

let test_pool_map_registered () =
  (* Worker tasks record protocol counters from spawned domains through
     per-domain child registries; the merged totals must be non-empty
     (the workers really recorded) and identical at any domain count
     (the merge is deterministic).  Only counters are compared: the
     pool.task_* histograms carry wall-clock values by design. *)
  let c1 = pool_counters 1 in
  check bool "workers recorded protocol counters" true (c1 <> []);
  check bool "some flood counter present" true
    (List.exists
       (fun ((k : Metrics.Registry.key), _) -> k.name = "flood.floods")
       c1);
  let c2 = pool_counters 2 in
  let c4 = pool_counters 4 in
  check bool "counters identical at 1 vs 2 domains" true (c1 = c2);
  check bool "counters identical at 1 vs 4 domains" true (c1 = c4)

(* ------------------------------------------------------------------ *)
(* Telemetry is transparent to the measured run *)

let test_harness_transparency () =
  let plain =
    Experiments.Harness.bursty_run ~seed:5 ~n:10 ~config:Dgmc.Config.atm_lan
      ~members:5 ()
  in
  let instrumented () =
    let trace = Sim.Trace.create () in
    let reg = Metrics.Registry.create () in
    let series = Metrics.Series.create ~bucket:1e-3 ~cap:64 () in
    let phase = Metrics.Phase.create () in
    let run =
      Metrics.Phase.with_ambient phase (fun () ->
          Experiments.Harness.bursty_run ~trace ~metrics:reg ~series ~seed:5
            ~n:10 ~config:Dgmc.Config.atm_lan ~members:5 ())
    in
    (run, Metrics.Series.to_json series)
  in
  let run1, series1 = instrumented () in
  let run2, series2 = instrumented () in
  check bool "full telemetry never changes the measured run" true
    (plain = run1);
  check bool "instrumented runs agree with each other" true (run1 = run2);
  check string "series content is deterministic" series1 series2

(* ------------------------------------------------------------------ *)
(* Bench diff: the regression gate *)

let meta =
  { Metrics.Bench.commit = "test"; master_seed = 1; domains = 2; quick = true }

let section ?(cells = [ ("dgmc", 20, 1) ]) name seq =
  {
    Metrics.Bench.name;
    elapsed_s = seq /. 2.0;
    seq_estimate_s = seq;
    domains = 2;
    cells =
      List.map
        (fun (series, size, seed) ->
          { Metrics.Bench.series; size; seed; wall_s = seq })
        cells;
  }

let diff ?(wall_tol = 0.10) baseline candidate =
  match
    Report.Bench_diff.compare_strings ~wall_tol
      ~baseline:(Metrics.Bench.to_string ~meta baseline)
      ~candidate:(Metrics.Bench.to_string ~meta candidate)
  with
  | Ok outcome -> outcome
  | Error msg -> failf "bench documents failed to parse: %s" msg

let test_bench_diff_self_compare () =
  let doc = [ section "fig6" 1.0; section "fig7" 2.0 ] in
  let outcome = diff doc doc in
  check bool "self-comparison passes" false (Report.Bench_diff.failed outcome)

let test_bench_diff_detects_regression () =
  let base = [ section "fig6" 1.0; section "fig7" 2.0 ] in
  let cand = [ section "fig6" 2.0; section "fig7" 4.0 ] in
  let outcome = diff base cand in
  check bool "2x wall regression fails the gate" true
    (Report.Bench_diff.failed outcome);
  let areas =
    List.filter_map
      (fun (f : Report.Bench_diff.finding) ->
        if f.severity = Report.Bench_diff.Fail then Some f.area else None)
      outcome.findings
  in
  check bool "total gated" true (List.mem "total" areas);
  check bool "each section gated" true
    (List.mem "section fig6" areas && List.mem "section fig7" areas)

let test_bench_diff_missing_section () =
  let base = [ section "fig6" 1.0; section "fig7" 2.0 ] in
  let cand = [ section "fig6" 1.0 ] in
  let outcome = diff base cand in
  check bool "missing section is structural" true
    (Report.Bench_diff.failed outcome);
  check bool "the right section is named" true
    (List.exists
       (fun (f : Report.Bench_diff.finding) ->
         f.severity = Report.Bench_diff.Fail
         && f.area = "section fig7"
         && f.detail = "missing from candidate")
       outcome.findings)

let test_bench_diff_cell_set_exact () =
  let base = [ section ~cells:[ ("dgmc", 20, 1); ("dgmc", 20, 2) ] "fig6" 1.0 ] in
  let cand = [ section ~cells:[ ("dgmc", 20, 1); ("dgmc", 40, 2) ] "fig6" 1.0 ] in
  check bool "cell identity change fails even inside wall tolerance" true
    (Report.Bench_diff.failed (diff base cand))

let test_bench_diff_tolerance_boundary () =
  let base = [ section "fig6" 1.0 ] in
  let within = [ section "fig6" 1.05 ] in
  let beyond = [ section "fig6" 1.2 ] in
  check bool "+5% within a 10% tolerance" false
    (Report.Bench_diff.failed (diff base within));
  check bool "+20% beyond a 10% tolerance" true
    (Report.Bench_diff.failed (diff base beyond));
  check bool "+20% within a widened tolerance" false
    (Report.Bench_diff.failed (diff ~wall_tol:0.25 base beyond))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "series",
        [
          test_case "bucketing oracle" `Quick test_series_bucketing;
          test_case "eviction and late samples" `Quick
            test_series_eviction_and_late;
          test_case "per-switch keys ordered" `Quick
            test_series_per_switch_keys;
        ] );
      ( "sli",
        [
          test_case "window oracle" `Quick test_sli_windows_oracle;
          test_case "summary oracle" `Quick test_sli_summary_oracle;
          test_case "scripted run reduction" `Quick test_sli_of_scripted_run;
        ] );
      ( "phase",
        [
          test_case "nesting and self attribution" `Quick test_phase_nesting;
          test_case "unbalanced leave is counted" `Quick
            test_phase_unbalanced_leave;
          test_case "ambient probe scoping" `Quick test_phase_ambient;
        ] );
      ( "cost",
        [
          test_case "disabled telemetry allocates nothing" `Quick
            test_disabled_zero_alloc;
        ] );
      ( "registry",
        [
          test_case "merge equals direct recording" `Quick
            test_registry_merge_oracle;
          test_case "pool workers record via child registries" `Quick
            test_pool_map_registered;
        ] );
      ( "transparency",
        [
          test_case "telemetry never changes the run" `Quick
            test_harness_transparency;
        ] );
      ( "bench-diff",
        [
          test_case "self-comparison passes" `Quick
            test_bench_diff_self_compare;
          test_case "2x regression detected" `Quick
            test_bench_diff_detects_regression;
          test_case "missing section fails" `Quick
            test_bench_diff_missing_section;
          test_case "cell sets compare exactly" `Quick
            test_bench_diff_cell_set_exact;
          test_case "wall tolerance boundary" `Quick
            test_bench_diff_tolerance_boundary;
        ] );
    ]
