(* Branch-level tests of the EventHandler/ReceiveLSA algorithms
   (paper Figures 4 and 5), driving a single Switch with crafted LSAs
   instead of a whole network.  Each test pins down one decision point
   of the pseudocode. *)

let check = Alcotest.check

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

let grid () = Net.Topo_gen.grid ~rows:2 ~cols:3 ()

(* A harness around one switch: captures everything it floods. *)
type harness = {
  engine : Sim.Engine.t;
  sw : Dgmc.Switch.t;
  flooded : Dgmc.Mc_lsa.t list ref;
}

let harness ?(id = 5) () =
  let engine = Sim.Engine.create () in
  let sw =
    Dgmc.Switch.create ~id ~n:6 ~config:Dgmc.Config.atm_lan ~engine
      ~graph:(grid ()) ()
  in
  let flooded = ref [] in
  Dgmc.Switch.set_flood sw (fun lsa -> flooded := lsa :: !flooded);
  { engine; sw; flooded }

let floods h = List.rev !(h.flooded)

let stamp l = Dgmc.Timestamp.of_array (Array.of_list l)

let join_lsa ?proposal ?members ~src ~stamp:s () =
  Dgmc.Mc_lsa.make ~src ~event:(Dgmc.Mc_lsa.Join Dgmc.Member.Both) ~mc ?proposal
    ?members ~stamp:s ()

let proposal_lsa ~src ~tree ~members ~stamp:s () =
  Dgmc.Mc_lsa.make ~src ~event:Dgmc.Mc_lsa.No_event ~mc ~proposal:tree ~members
    ~stamp:s ()

(* ------------------------------------------------------------------ *)
(* EventHandler branches (Figure 4) *)

let test_event_with_no_outstanding_floods_proposal () =
  (* Lines 2-10: R >= E, so the event LSA carries a proposal after Tc. *)
  let h = harness () in
  Dgmc.Switch.host_join h.sw mc Dgmc.Member.Both;
  check Alcotest.int "nothing flooded before Tc" 0 (List.length (floods h));
  Sim.Engine.run h.engine;
  match floods h with
  | [ lsa ] ->
    check Alcotest.bool "carries the event" true (Dgmc.Mc_lsa.is_event lsa);
    check Alcotest.bool "carries a proposal" true (lsa.proposal <> None);
    check Alcotest.int "stamp counts the event" 1 (Dgmc.Timestamp.get lsa.stamp 5)
  | l -> Alcotest.failf "expected exactly one LSA, got %d" (List.length l)

let test_event_with_outstanding_defers () =
  (* Lines 15-17: E > R (an outstanding LSA is expected), so the event
     floods immediately, bare, and the proposal is deferred. *)
  let h = harness () in
  (* Teach the switch to expect an event from switch 0 it has not seen:
     an LSA from switch 1 whose stamp covers one event of switch 0. *)
  Dgmc.Switch.receive h.sw (join_lsa ~src:1 ~stamp:(stamp [ 1; 1; 0; 0; 0; 0 ]) ());
  Sim.Engine.run h.engine;
  let before = List.length (floods h) in
  Dgmc.Switch.host_join h.sw mc Dgmc.Member.Both;
  (* The bare event LSA goes out synchronously — no Tc wait. *)
  let lsa = List.nth (floods h) before in
  check Alcotest.bool "event flooded immediately" true (Dgmc.Mc_lsa.is_event lsa);
  check Alcotest.bool "no proposal attached" true (lsa.proposal = None)

let test_withdrawn_event_computation_still_advertises () =
  (* Lines 11-13: R advances mid-computation => the proposal is
     withdrawn but the event itself is still flooded (bare). *)
  let h = harness () in
  Dgmc.Switch.host_join h.sw mc Dgmc.Member.Both;
  (* Before Tc elapses, an event from elsewhere arrives and is consumed,
     advancing R. *)
  Dgmc.Switch.receive h.sw (join_lsa ~src:2 ~stamp:(stamp [ 0; 0; 1; 0; 0; 0 ]) ());
  Sim.Engine.run h.engine;
  let own_event_lsas =
    List.filter
      (fun (l : Dgmc.Mc_lsa.t) -> Dgmc.Mc_lsa.is_event l && l.src = 5)
      (floods h)
  in
  (match own_event_lsas with
  | [ lsa ] -> check Alcotest.bool "withdrawn => bare event" true (lsa.proposal = None)
  | _ -> Alcotest.fail "own event must be advertised exactly once");
  let s = Dgmc.Switch.stats h.sw in
  check Alcotest.int "computation counted" 1 s.computations_withdrawn

let test_link_event_only_for_affected_mcs () =
  let h = harness () in
  let other = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 2 in
  (* Install a topology for [mc] that uses link (0, 1); [other] uses
     only (4, 5).  Both via accepted proposals. *)
  let install target_mc tree_edges members_ids =
    let members =
      Dgmc.Member.of_list (List.map (fun x -> (x, Dgmc.Member.Both)) members_ids)
    in
    let tree = Mctree.Tree.of_edges ~terminals:members_ids tree_edges in
    let s =
      List.fold_left
        (fun acc m -> Dgmc.Timestamp.bump acc m)
        (Dgmc.Timestamp.zero 6) members_ids
    in
    Dgmc.Switch.receive h.sw
      (Dgmc.Mc_lsa.make ~src:(List.hd members_ids)
         ~event:(Dgmc.Mc_lsa.Join Dgmc.Member.Both) ~mc:target_mc ~proposal:tree
         ~members ~stamp:s ())
  in
  install mc [ (0, 1) ] [ 0; 1 ];
  install other [ (4, 5) ] [ 4 ];
  Sim.Engine.run h.engine;
  let before = List.length (floods h) in
  (* Link (0, 1) fails; only [mc] is affected. *)
  Dgmc.Switch.link_event h.sw
    { Lsr.Lsdb.u = 0; v = 1; up = false; version = 1 }
    ~detector:true;
  Sim.Engine.run h.engine;
  let new_lsas = List.filteri (fun i _ -> i >= before) (floods h) in
  check Alcotest.int "one MC link LSA" 1 (List.length new_lsas);
  let lsa = List.hd new_lsas in
  check Alcotest.bool "for the affected MC" true (Dgmc.Mc_id.equal lsa.mc mc);
  check Alcotest.bool "link event" true (lsa.event = Dgmc.Mc_lsa.Link)

let test_link_event_non_detector_is_silent () =
  let h = harness () in
  Dgmc.Switch.link_event h.sw
    { Lsr.Lsdb.u = 0; v = 1; up = false; version = 1 }
    ~detector:false;
  Sim.Engine.run h.engine;
  check Alcotest.int "nothing flooded" 0 (List.length (floods h));
  check Alcotest.bool "image updated" false
    (Net.Graph.link_is_up (Dgmc.Switch.image h.sw) 0 1)

(* ------------------------------------------------------------------ *)
(* ReceiveLSA branches (Figure 5) *)

let test_accepts_up_to_date_proposal () =
  (* Lines 11-14: T >= E => candidate accepted and installed. *)
  let h = harness () in
  let tree = Mctree.Tree.of_edges ~terminals:[ 0 ] [] in
  let members = Dgmc.Member.of_list [ (0, Dgmc.Member.Both) ] in
  Dgmc.Switch.receive h.sw
    (join_lsa ~src:0 ~proposal:tree ~members ~stamp:(stamp [ 1; 0; 0; 0; 0; 0 ]) ());
  Sim.Engine.run h.engine;
  check Alcotest.bool "topology installed" true
    (Dgmc.Switch.topology h.sw mc = Some tree);
  check Alcotest.int "accepted counted" 1 (Dgmc.Switch.stats h.sw).proposals_accepted;
  let _, _, c = Option.get (Dgmc.Switch.stamps h.sw mc) in
  check Alcotest.int "C adopted" 1 (Dgmc.Timestamp.get c 0)

let test_rejects_stale_proposal () =
  (* A proposal whose stamp does not cover everything expected is not
     installed. *)
  let h = harness () in
  (* First learn (via an event LSA) that switch 0 has had 2 events. *)
  Dgmc.Switch.receive h.sw (join_lsa ~src:0 ~stamp:(stamp [ 2; 0; 0; 0; 0; 0 ]) ());
  Sim.Engine.run h.engine;
  let installed_before = Dgmc.Switch.topology h.sw mc in
  (* Now a proposal based on only 1 event of switch 0 arrives late. *)
  let stale_tree = Mctree.Tree.of_edges ~terminals:[ 0; 1 ] [ (0, 1) ] in
  Dgmc.Switch.receive h.sw
    (proposal_lsa ~src:1 ~tree:stale_tree
       ~members:(Dgmc.Member.of_list [ (0, Dgmc.Member.Both) ])
       ~stamp:(stamp [ 1; 0; 0; 0; 0; 0 ]) ());
  Sim.Engine.run h.engine;
  check Alcotest.bool "stale proposal not installed" true
    (Dgmc.Switch.topology h.sw mc = installed_before
    || Dgmc.Switch.topology h.sw mc <> Some stale_tree)

let test_inconsistency_triggers_own_proposal () =
  (* Lines 15-16 + 19-27: the arriving LSA's stamp misses our local
     event => flag set => triggered computation => triggered LSA. *)
  let h = harness () in
  Dgmc.Switch.host_join h.sw mc Dgmc.Member.Both;
  Sim.Engine.run h.engine;
  let before = List.length (floods h) in
  (* An event LSA from switch 0 that does not know our event. *)
  Dgmc.Switch.receive h.sw (join_lsa ~src:0 ~stamp:(stamp [ 1; 0; 0; 0; 0; 0 ]) ());
  Sim.Engine.run h.engine;
  let new_lsas = List.filteri (fun i _ -> i >= before) (floods h) in
  (match new_lsas with
  | [ lsa ] ->
    check Alcotest.bool "triggered (no event)" false (Dgmc.Mc_lsa.is_event lsa);
    check Alcotest.bool "carries proposal" true (lsa.proposal <> None);
    check Alcotest.int "stamp covers both events" 2 (Dgmc.Timestamp.sum lsa.stamp)
  | l -> Alcotest.failf "expected one triggered LSA, got %d" (List.length l));
  (* E is brought up to R after flooding (line 24). *)
  let r, e, _ = Option.get (Dgmc.Switch.stamps h.sw mc) in
  check Alcotest.bool "E = R" true (Dgmc.Timestamp.equal r e)

let test_consistent_event_does_not_trigger () =
  (* An event LSA whose stamp covers all our events sets no flag: we
     wait for the sender's (or someone's) proposal instead. *)
  let h = harness () in
  Dgmc.Switch.receive h.sw (join_lsa ~src:0 ~stamp:(stamp [ 1; 0; 0; 0; 0; 0 ]) ());
  Sim.Engine.run h.engine;
  check Alcotest.int "no computation at a mere bystander" 0
    (Dgmc.Switch.stats h.sw).computations;
  check Alcotest.int "nothing flooded" 0 (List.length (floods h))

let test_r_gt_c_suppresses_duplicate_proposal () =
  (* Line 19's R > C condition: once a proposal for the current event
     set is installed, later bare LSAs for the same events do not make
     this switch compute again. *)
  let h = harness () in
  Dgmc.Switch.host_join h.sw mc Dgmc.Member.Both;
  Sim.Engine.run h.engine;
  (* Installed own proposal: C = R. *)
  let computations = (Dgmc.Switch.stats h.sw).computations in
  (* A bare LSA with an all-zero stamp: it does not know our event, so
     the flag is set (line 15) — but R has not advanced beyond C, so
     line 19's R > C forbids recomputing for the same event set. *)
  Dgmc.Switch.receive h.sw
    (Dgmc.Mc_lsa.make ~src:0 ~event:Dgmc.Mc_lsa.No_event ~mc
       ~stamp:(stamp [ 0; 0; 0; 0; 0; 0 ]) ());
  Sim.Engine.run h.engine;
  check Alcotest.int "no extra computation"
    computations
    (Dgmc.Switch.stats h.sw).computations

let test_triggered_withdrawn_when_mailbox_nonempty () =
  (* Lines 22 and 28-30: LSAs arriving during a triggered computation
     leave the mailbox non-empty at completion => withdraw, then the
     next invocation consumes them. *)
  let h = harness () in
  Dgmc.Switch.host_join h.sw mc Dgmc.Member.Both;
  Sim.Engine.run h.engine;
  (* Trigger a computation via an inconsistent event LSA... *)
  Dgmc.Switch.receive h.sw (join_lsa ~src:0 ~stamp:(stamp [ 1; 0; 0; 0; 0; 0 ]) ());
  (* ...and land another LSA before Tc elapses (the triggered
     computation is pending; the mailbox accumulates). *)
  ignore
    (Sim.Engine.schedule h.engine ~delay:(Dgmc.Config.atm_lan.tc /. 2.0)
       (fun () ->
         Dgmc.Switch.receive h.sw
           (join_lsa ~src:1 ~stamp:(stamp [ 1; 1; 0; 0; 0; 0 ]) ())));
  Sim.Engine.run h.engine;
  let s = Dgmc.Switch.stats h.sw in
  check Alcotest.bool "a computation was withdrawn" true
    (s.computations_withdrawn >= 1);
  (* Eventually a proposal covering all three events is flooded. *)
  let final_proposals =
    List.filter
      (fun (l : Dgmc.Mc_lsa.t) ->
        l.proposal <> None && Dgmc.Timestamp.sum l.stamp = 3)
      (floods h)
  in
  check Alcotest.bool "final proposal covers all events" true
    (final_proposals <> [])

let test_unknown_mc_bare_proposal_dropped () =
  let h = harness () in
  Dgmc.Switch.receive h.sw
    (proposal_lsa ~src:0
       ~tree:(Mctree.Tree.of_terminals [ 0 ])
       ~members:(Dgmc.Member.of_list [ (0, Dgmc.Member.Both) ])
       ~stamp:(stamp [ 1; 0; 0; 0; 0; 0 ]) ());
  Sim.Engine.run h.engine;
  check Alcotest.bool "no state created" true (Dgmc.Switch.members h.sw mc = None)

let test_event_lsa_creates_state () =
  let h = harness () in
  Dgmc.Switch.receive h.sw (join_lsa ~src:0 ~stamp:(stamp [ 1; 0; 0; 0; 0; 0 ]) ());
  Sim.Engine.run h.engine;
  match Dgmc.Switch.members h.sw mc with
  | Some m -> check Alcotest.(list int) "member recorded" [ 0 ] (Dgmc.Member.ids m)
  | None -> Alcotest.fail "event LSA must create state"

let test_stale_membership_not_applied_backwards () =
  (* The per-source sequencing: a reordered older membership LSA counts
     as an event but does not roll the member list back. *)
  let h = harness () in
  (* Newer LSA first: switch 0's SECOND event, a join. *)
  Dgmc.Switch.receive h.sw (join_lsa ~src:0 ~stamp:(stamp [ 2; 0; 0; 0; 0; 0 ]) ());
  Sim.Engine.run h.engine;
  (* Older LSA late: switch 0's FIRST event was a leave... which would
     remove it if applied. *)
  Dgmc.Switch.receive h.sw
    (Dgmc.Mc_lsa.make ~src:0 ~event:Dgmc.Mc_lsa.Leave ~mc
       ~stamp:(stamp [ 1; 0; 0; 0; 0; 0 ]) ());
  Sim.Engine.run h.engine;
  let m = Option.get (Dgmc.Switch.members h.sw mc) in
  check Alcotest.(list int) "newer membership preserved" [ 0 ] (Dgmc.Member.ids m);
  let r, _, _ = Option.get (Dgmc.Switch.stamps h.sw mc) in
  check Alcotest.int "both events counted" 2 (Dgmc.Timestamp.get r 0)

let test_flood_callback_required () =
  let engine = Sim.Engine.create () in
  let sw =
    Dgmc.Switch.create ~id:0 ~n:6 ~config:Dgmc.Config.atm_lan ~engine
      ~graph:(grid ()) ()
  in
  Dgmc.Switch.host_join sw mc Dgmc.Member.Both;
  Alcotest.check_raises "uninstalled flood callback"
    (Failure "Switch: flood callback not installed") (fun () ->
      Sim.Engine.run engine)

let () =
  Alcotest.run "dgmc-switch"
    [
      ( "event-handler",
        [
          Alcotest.test_case "proposal when nothing outstanding" `Quick
            test_event_with_no_outstanding_floods_proposal;
          Alcotest.test_case "defers when outstanding" `Quick
            test_event_with_outstanding_defers;
          Alcotest.test_case "withdrawn computation still advertises" `Quick
            test_withdrawn_event_computation_still_advertises;
          Alcotest.test_case "link event scoped to affected MCs" `Quick
            test_link_event_only_for_affected_mcs;
          Alcotest.test_case "non-detector stays silent" `Quick
            test_link_event_non_detector_is_silent;
        ] );
      ( "receive-lsa",
        [
          Alcotest.test_case "accepts up-to-date proposal" `Quick
            test_accepts_up_to_date_proposal;
          Alcotest.test_case "rejects stale proposal" `Quick
            test_rejects_stale_proposal;
          Alcotest.test_case "inconsistency triggers proposal" `Quick
            test_inconsistency_triggers_own_proposal;
          Alcotest.test_case "consistent event does not trigger" `Quick
            test_consistent_event_does_not_trigger;
          Alcotest.test_case "R > C suppresses duplicates" `Quick
            test_r_gt_c_suppresses_duplicate_proposal;
          Alcotest.test_case "withdrawal on busy mailbox" `Quick
            test_triggered_withdrawn_when_mailbox_nonempty;
          Alcotest.test_case "bare proposal for unknown MC dropped" `Quick
            test_unknown_mc_bare_proposal_dropped;
          Alcotest.test_case "event LSA creates state" `Quick
            test_event_lsa_creates_state;
          Alcotest.test_case "stale membership skipped" `Quick
            test_stale_membership_not_applied_backwards;
        ] );
      ( "wiring",
        [ Alcotest.test_case "flood callback required" `Quick test_flood_callback_required ] );
    ]
