(* Property-based tests (qcheck): randomized scenarios checking the
   protocol's core guarantees and the tree algorithms' invariants. *)

(* ------------------------------------------------------------------ *)
(* Generators *)

(* A scenario: a seeded random graph, a timing regime, and a random
   mixed schedule of joins/leaves (+ optional non-partitioning link
   failures).  Shrinking is not very meaningful here, so scenarios are
   kept small instead. *)
type scenario = {
  seed : int;
  n : int;
  wan : bool;
  schedule : [ `Join of int | `Leave of int | `Link_down ] list;
      (** Switch indices are taken modulo [n]; [`Leave] of a non-member
          is reinterpreted as a join at injection time. *)
}

let pp_op = function
  | `Join x -> Printf.sprintf "join %d" x
  | `Leave x -> Printf.sprintf "leave %d" x
  | `Link_down -> "link-down"

let pp_scenario s =
  Printf.sprintf "{seed=%d; n=%d; wan=%b; [%s]}" s.seed s.n s.wan
    (String.concat "; " (List.map pp_op s.schedule))

let scenario_gen =
  QCheck2.Gen.(
    let op =
      frequency
        [
          (5, map (fun x -> `Join x) (int_range 0 100));
          (3, map (fun x -> `Leave x) (int_range 0 100));
          (1, return `Link_down);
        ]
    in
    map
      (fun (seed, n, wan, schedule) -> { seed; n; wan; schedule })
      (quad (int_range 1 10000) (int_range 5 25) bool
         (list_size (int_range 1 15) op)))

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

(* Replay a scenario: events are injected in a burst (all within one
   round), running to quiescence only at the very end. *)
let run_scenario s =
  let graph = Experiments.Harness.graph_for ~seed:s.seed ~n:s.n in
  let config = if s.wan then Dgmc.Config.wan else Dgmc.Config.atm_lan in
  let net = Dgmc.Protocol.create ~graph ~config () in
  let round = Dgmc.Config.round_length config ~graph in
  let members = ref [] in
  let planned_down = ref [] in
  let rng = Sim.Rng.create (s.seed + 17) in
  List.iteri
    (fun i op ->
      let at = float_of_int i *. round /. 10.0 in
      let jitter = Sim.Rng.float rng (round /. 20.0) in
      let at = at +. jitter in
      match op with
      | `Join x ->
        let switch = x mod s.n in
        if not (List.mem switch !members) then begin
          members := switch :: !members;
          Dgmc.Protocol.schedule_join net ~at ~switch mc Dgmc.Member.Both
        end
      | `Leave x ->
        let switch = x mod s.n in
        if List.mem switch !members then begin
          members := List.filter (fun m -> m <> switch) !members;
          Dgmc.Protocol.schedule_leave net ~at ~switch mc
        end
        else begin
          members := switch :: !members;
          Dgmc.Protocol.schedule_join net ~at ~switch mc Dgmc.Member.Both
        end
      | `Link_down ->
        (* Only fail links whose loss — combined with the failures
           already planned — keeps the network connected, so that global
           agreement stays well-defined. *)
        let keeps_connected (e : Net.Graph.edge) =
          let g = Net.Graph.copy graph in
          List.iter (fun (u, v) -> Net.Graph.set_link g u v ~up:false) !planned_down;
          Net.Graph.set_link g e.u e.v ~up:false;
          Net.Bfs.is_connected g
        in
        let candidates =
          List.filter
            (fun (e : Net.Graph.edge) ->
              (not (List.mem (e.u, e.v) !planned_down)) && keeps_connected e)
            (Net.Graph.edges graph)
        in
        (match candidates with
        | [] -> ()
        | es ->
          let e = Sim.Rng.pick rng es in
          planned_down := (e.u, e.v) :: !planned_down;
          Dgmc.Protocol.schedule_link_down net ~at e.u e.v))
    s.schedule;
  Dgmc.Protocol.run net;
  net

(* ------------------------------------------------------------------ *)
(* Protocol properties *)

let prop_random_scenarios_converge =
  QCheck2.Test.make ~name:"random mixed schedules reach agreement" ~count:60
    ~print:pp_scenario scenario_gen (fun s ->
      let net = run_scenario s in
      match Dgmc.Protocol.divergence net mc with
      | [] -> true
      | reasons ->
        QCheck2.Test.fail_reportf "%s diverged: %s" (pp_scenario s)
          (String.concat "; " reasons))

let prop_agreed_topology_is_valid =
  QCheck2.Test.make ~name:"agreed topology is a valid embedded tree" ~count:40
    ~print:pp_scenario scenario_gen (fun s ->
      let net = run_scenario s in
      match Dgmc.Protocol.agreed_topology net mc with
      | None -> true (* all members left, or never joined *)
      | Some tree ->
        Mctree.Tree.is_valid_mc_topology (Dgmc.Protocol.graph net) tree)

(* Pinned regression: under QCHECK_SEED=961582112 the convergence
   property above used to shrink to this scenario — a non-partitioning
   link failure racing a burst of joins left one switch with a stale
   link-state image (its copy of the link event died at the failed link
   itself) and a tree the rest of the network had moved off.  Fixed by
   versioned LSDB entries with re-flooding on adoption; replayed here
   deterministically so the fix can never regress silently behind
   qcheck's random seed. *)
let scenario_961582112 =
  {
    seed = 827;
    n = 23;
    wan = true;
    schedule = [ `Join 98; `Join 0; `Join 0; `Link_down ];
  }

let test_pinned_stale_image_scenario () =
  let s = scenario_961582112 in
  match Dgmc.Protocol.divergence (run_scenario s) mc with
  | [] -> ()
  | reasons ->
    Alcotest.failf "%s diverged: %s" (pp_scenario s)
      (String.concat "; " reasons)

let prop_deterministic_replay =
  QCheck2.Test.make ~name:"same scenario, same outcome" ~count:20
    ~print:pp_scenario scenario_gen (fun s ->
      let t1 = Dgmc.Protocol.agreed_topology (run_scenario s) mc in
      let t2 = Dgmc.Protocol.agreed_topology (run_scenario s) mc in
      match (t1, t2) with
      | None, None -> true
      | Some a, Some b -> Mctree.Tree.equal a b
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Timestamp algebra properties

   The vector-timestamp laws the protocol's reconciliation — and the
   parallel runner's deterministic merge of per-cell results — lean on:
   [geq] is a partial order, [compare_total] a total order consistent
   with it, and [merge] a commutative, idempotent least upper bound. *)

let pp_stamps ts =
  String.concat " "
    (List.map (fun t -> Format.asprintf "%a" Dgmc.Timestamp.pp t) ts)

(* [k] same-size random stamps, entries 0..4 (small enough that equal
   and comparable pairs actually occur). *)
let stamps_gen k =
  QCheck2.Gen.(
    int_range 1 6 >>= fun size ->
    map
      (fun arrays -> List.map Dgmc.Timestamp.of_array arrays)
      (list_repeat k (array_size (return size) (int_range 0 4))))

(* A pair (a, b) with b pointwise <= a, so the geq-related branches are
   exercised on every sample rather than by luck. *)
let dominated_pair_gen =
  QCheck2.Gen.(
    int_range 1 6 >>= fun size ->
    map
      (fun (a, cuts) ->
        let b = Array.mapi (fun i x -> max 0 (x - cuts.(i))) a in
        (Dgmc.Timestamp.of_array a, Dgmc.Timestamp.of_array b))
      (pair
         (array_size (return size) (int_range 0 4))
         (array_size (return size) (int_range 0 4))))

let prop_geq_reflexive =
  QCheck2.Test.make ~name:"timestamp: geq is reflexive" ~count:200
    ~print:(fun ts -> pp_stamps ts)
    (stamps_gen 1)
    (function
      | [ a ] -> Dgmc.Timestamp.geq a a
      | _ -> false)

let prop_geq_antisymmetric =
  QCheck2.Test.make ~name:"timestamp: geq both ways iff equal" ~count:400
    ~print:pp_stamps (stamps_gen 2)
    (function
      | [ a; b ] ->
        Dgmc.Timestamp.(geq a b && geq b a) = Dgmc.Timestamp.equal a b
      | _ -> false)

let prop_geq_transitive =
  QCheck2.Test.make ~name:"timestamp: geq is transitive" ~count:400
    ~print:(fun ((a, b), cuts) ->
      pp_stamps [ a; b ] ^ Printf.sprintf " cuts=%d" (Array.length cuts))
    QCheck2.Gen.(
      dominated_pair_gen >>= fun (a, b) ->
      map
        (fun cuts -> ((a, b), cuts))
        (array_size (return (Dgmc.Timestamp.size a)) (int_range 0 4)))
    (fun ((a, b), cuts) ->
      (* c pointwise <= b <= a: the chain must collapse. *)
      let c =
        Dgmc.Timestamp.of_array
          (Array.mapi
             (fun i x -> max 0 (x - cuts.(i)))
             (Dgmc.Timestamp.to_array b))
      in
      Dgmc.Timestamp.(geq a b && geq b c && geq a c))

let prop_compare_total_consistent_with_geq =
  QCheck2.Test.make
    ~name:"timestamp: compare_total is a total order refining geq" ~count:400
    ~print:pp_stamps (stamps_gen 3)
    (function
      | [ a; b; c ] ->
        let ct = Dgmc.Timestamp.compare_total in
        (* Zero exactly on equality. *)
        (ct a b = 0) = Dgmc.Timestamp.equal a b
        (* Antisymmetric. *)
        && compare (ct a b) 0 = compare 0 (ct b a)
        (* Transitive. *)
        && ((not (ct a b <= 0 && ct b c <= 0)) || ct a c <= 0)
        (* Refines the partial order: strict domination sorts after. *)
        && ((not (Dgmc.Timestamp.gt a b)) || ct a b > 0)
      | _ -> false)

let prop_merge_idempotent_commutative_associative =
  QCheck2.Test.make ~name:"timestamp: merge laws (idem, comm, assoc)"
    ~count:400 ~print:pp_stamps (stamps_gen 3)
    (function
      | [ a; b; c ] ->
        let open Dgmc.Timestamp in
        equal (merge a a) a
        && equal (merge a b) (merge b a)
        && equal (merge (merge a b) c) (merge a (merge b c))
      | _ -> false)

let prop_merge_is_least_upper_bound =
  QCheck2.Test.make ~name:"timestamp: merge is the least upper bound"
    ~count:400
    ~print:(fun (ts, _) -> pp_stamps ts)
    QCheck2.Gen.(
      stamps_gen 2 >>= fun ts ->
      map
        (fun lift -> (ts, lift))
        (array_size (return (Dgmc.Timestamp.size (List.hd ts))) (int_range 0 3)))
    (fun (ts, lift) ->
      match ts with
      | [ a; b ] ->
        let m = Dgmc.Timestamp.merge a b in
        (* Upper bound of both ... *)
        Dgmc.Timestamp.(geq m a && geq m b)
        (* ... below every independently constructed upper bound. *)
        &&
        let u =
          Dgmc.Timestamp.of_array
            (Array.init (Dgmc.Timestamp.size a) (fun i ->
                 max (Dgmc.Timestamp.get a i) (Dgmc.Timestamp.get b i)
                 + lift.(i)))
        in
        Dgmc.Timestamp.geq u m
      | _ -> false)

let prop_merge_absorbs_dominated =
  QCheck2.Test.make ~name:"timestamp: merge with a dominated stamp is identity"
    ~count:400
    ~print:(fun (a, b) -> pp_stamps [ a; b ])
    dominated_pair_gen
    (fun (a, b) -> Dgmc.Timestamp.(equal (merge a b) a && equal (merge b a) a))

(* ------------------------------------------------------------------ *)
(* Tree algorithm properties *)

type tree_case = { g_seed : int; g_n : int; picks : int list }

let pp_tree_case c =
  Printf.sprintf "{g_seed=%d; g_n=%d; %d terminals}" c.g_seed c.g_n
    (List.length (List.sort_uniq compare c.picks))

let tree_case_gen =
  QCheck2.Gen.(
    map
      (fun (g_seed, g_n, picks) -> { g_seed; g_n; picks })
      (triple (int_range 1 10000) (int_range 4 30)
         (list_size (int_range 1 8) (int_range 0 100))))

let terminals_of c =
  List.sort_uniq compare (List.map (fun x -> x mod c.g_n) c.picks)

let prop_steiner_heuristics_valid =
  QCheck2.Test.make ~name:"steiner heuristics produce valid topologies"
    ~count:100 ~print:pp_tree_case tree_case_gen (fun c ->
      let g = Experiments.Harness.graph_for ~seed:c.g_seed ~n:c.g_n in
      let terminals = terminals_of c in
      List.for_all
        (fun algo ->
          let t = algo g terminals in
          Mctree.Tree.is_valid_mc_topology g t
          && Mctree.Tree.Int_set.elements (Mctree.Tree.terminals t) = terminals)
        [ Mctree.Steiner.kmb; Mctree.Steiner.sph ])

let prop_steiner_within_approximation_bound =
  QCheck2.Test.make ~name:"steiner cost within 2x lower bound" ~count:100
    ~print:pp_tree_case tree_case_gen (fun c ->
      let g = Experiments.Harness.graph_for ~seed:c.g_seed ~n:c.g_n in
      let terminals = terminals_of c in
      let lb = Mctree.Steiner.lower_bound g terminals in
      List.for_all
        (fun algo ->
          Mctree.Tree.cost g (algo g terminals) <= (2.0 *. lb) +. 1e-6)
        [ Mctree.Steiner.kmb; Mctree.Steiner.sph ])

let prop_incremental_sequence_stays_valid =
  QCheck2.Test.make ~name:"incremental join/leave keeps a valid topology"
    ~count:100 ~print:pp_tree_case tree_case_gen (fun c ->
      let g = Experiments.Harness.graph_for ~seed:c.g_seed ~n:c.g_n in
      let rng = Sim.Rng.create c.g_seed in
      let tree = ref Mctree.Tree.empty in
      let members = ref [] in
      let ok = ref true in
      List.iter
        (fun x ->
          let switch = x mod c.g_n in
          if List.mem switch !members then begin
            members := List.filter (fun m -> m <> switch) !members;
            tree := Mctree.Incremental.leave g !tree switch
          end
          else begin
            members := switch :: !members;
            tree := Mctree.Incremental.join g !tree switch
          end;
          ignore rng;
          if !members <> [] then
            ok :=
              !ok
              && Mctree.Tree.is_valid_mc_topology g !tree
              && Mctree.Tree.Int_set.elements (Mctree.Tree.terminals !tree)
                 = List.sort compare !members)
        (c.picks @ c.picks);
      !ok)

let prop_spt_matches_dijkstra =
  QCheck2.Test.make ~name:"spt delays equal shortest-path distances" ~count:100
    ~print:pp_tree_case tree_case_gen (fun c ->
      let g = Experiments.Harness.graph_for ~seed:c.g_seed ~n:c.g_n in
      match terminals_of c with
      | [] -> true
      | root :: receivers ->
        let t = Mctree.Spt.source_rooted g ~root ~receivers in
        List.for_all
          (fun (receiver, delay) ->
            Float.abs (delay -. Net.Dijkstra.distance g root receiver) < 1e-9)
          (Mctree.Spt.receivers_cost g t ~root))

let prop_mst_spans_and_sized =
  QCheck2.Test.make ~name:"kruskal yields a spanning tree" ~count:100
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck2.Gen.(pair (int_range 1 10000) (int_range 2 40))
    (fun (seed, n) ->
      let g = Experiments.Harness.graph_for ~seed ~n in
      let mst = Net.Mst.kruskal g in
      List.length mst = n - 1 && Net.Mst.spans g mst)

let prop_flooding_covers_connected_graph =
  QCheck2.Test.make ~name:"flooding reaches every switch exactly once"
    ~count:60
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck2.Gen.(pair (int_range 1 10000) (int_range 2 30))
    (fun (seed, n) ->
      let g = Experiments.Harness.graph_for ~seed ~n in
      let engine = Sim.Engine.create () in
      let hits = Array.make n 0 in
      let deliver ~switch _ = hits.(switch) <- hits.(switch) + 1 in
      let f = Lsr.Flooding.create ~engine ~graph:g ~t_hop:1.0 ~deliver () in
      Lsr.Flooding.flood f (Lsr.Lsa.make ~origin:0 ~seq:0 ());
      Sim.Engine.run engine;
      hits.(0) = 0
      && Array.for_all (fun h -> h = 1) (Array.sub hits 1 (n - 1)))

(* ------------------------------------------------------------------ *)
(* Hierarchy properties *)

type hier_case = { h_seed : int; h_areas : int; h_ops : (bool * int) list }

let pp_hier c =
  Printf.sprintf "{h_seed=%d; areas=%d; %d ops}" c.h_seed c.h_areas
    (List.length c.h_ops)

let hier_gen =
  QCheck2.Gen.(
    map
      (fun (h_seed, h_areas, h_ops) -> { h_seed; h_areas; h_ops })
      (triple (int_range 1 5000) (int_range 2 5)
         (list_size (int_range 1 12) (pair bool (int_range 0 1000)))))

let prop_hierarchy_random_churn =
  QCheck2.Test.make ~name:"hierarchy: random churn reaches agreement" ~count:40
    ~print:pp_hier hier_gen (fun c ->
      let per_area = 6 in
      let rng = Sim.Rng.create c.h_seed in
      let graph, partition =
        Net.Topo_gen.clustered rng ~areas:c.h_areas ~per_area ()
      in
      let h =
        Hierarchy.Hmc.create ~graph ~partition ~config:Dgmc.Config.atm_lan ()
      in
      let n = c.h_areas * per_area in
      let members = ref [] in
      List.iter
        (fun (_, x) ->
          let s = x mod n in
          if List.mem s !members then begin
            members := List.filter (fun m -> m <> s) !members;
            Hierarchy.Hmc.leave h ~switch:s mc
          end
          else begin
            members := s :: !members;
            Hierarchy.Hmc.join h ~switch:s mc Dgmc.Member.Both
          end;
          (* Quiesce between ops: the hierarchy's gateway control loop is
             eventually consistent, not burst-safe (documented). *)
          Hierarchy.Hmc.run h)
        c.h_ops;
      match Hierarchy.Hmc.divergence h mc with
      | [] -> true
      | reasons ->
        QCheck2.Test.fail_reportf "%s diverged: %s" (pp_hier c)
          (String.concat "; " reasons))

let prop_hierarchy_global_tree_valid =
  QCheck2.Test.make ~name:"hierarchy: stitched tree spans the members" ~count:40
    ~print:pp_hier hier_gen (fun c ->
      let per_area = 6 in
      let rng = Sim.Rng.create c.h_seed in
      let graph, partition =
        Net.Topo_gen.clustered rng ~areas:c.h_areas ~per_area ()
      in
      let h =
        Hierarchy.Hmc.create ~graph ~partition ~config:Dgmc.Config.atm_lan ()
      in
      let n = c.h_areas * per_area in
      let members =
        List.sort_uniq compare (List.map (fun (_, x) -> x mod n) c.h_ops)
      in
      List.iter
        (fun s ->
          Hierarchy.Hmc.join h ~switch:s mc Dgmc.Member.Both;
          Hierarchy.Hmc.run h)
        members;
      match Hierarchy.Hmc.global_tree h mc with
      | None -> QCheck2.Test.fail_reportf "%s: no global tree" (pp_hier c)
      | Some tree ->
        Mctree.Tree.is_valid_mc_topology graph tree
        && Mctree.Tree.Int_set.elements (Mctree.Tree.terminals tree) = members)

(* ------------------------------------------------------------------ *)
(* Data-plane properties *)

let prop_dataplane_conservation =
  QCheck2.Test.make
    ~name:"dataplane: every packet is delivered or dropped (single link)"
    ~count:60
    ~print:(fun (n, cap) -> Printf.sprintf "packets=%d queue=%d" n cap)
    QCheck2.Gen.(pair (int_range 1 60) (int_range 1 16))
    (fun (n, cap) ->
      let engine = Sim.Engine.create () in
      let graph = Net.Topo_gen.line 2 in
      let fw =
        Dataplane.Forwarder.create ~engine ~graph ~bandwidth:1e6
          ~queue_capacity:cap ()
      in
      let tree = Mctree.Steiner.sph graph [ 0; 1 ] in
      let delivered = ref 0 in
      for _ = 1 to n do
        Dataplane.Forwarder.multicast fw ~tree ~src:0 ~size_bits:1000.0
          ~on_deliver:(fun ~receiver:_ ~at:_ -> incr delivered)
      done;
      Sim.Engine.run engine;
      !delivered + Dataplane.Forwarder.packets_dropped fw = n
      && !delivered = min n cap)

let prop_dataplane_fifo_order =
  QCheck2.Test.make ~name:"dataplane: FIFO per link" ~count:40
    ~print:string_of_int
    QCheck2.Gen.(int_range 2 30)
    (fun n ->
      let engine = Sim.Engine.create () in
      let graph = Net.Topo_gen.line 2 in
      let fw =
        Dataplane.Forwarder.create ~engine ~graph ~bandwidth:1e6
          ~queue_capacity:64 ()
      in
      let tree = Mctree.Steiner.sph graph [ 0; 1 ] in
      let order = ref [] in
      for i = 1 to n do
        Dataplane.Forwarder.multicast fw ~tree ~src:0 ~size_bits:1000.0
          ~on_deliver:(fun ~receiver:_ ~at:_ -> order := i :: !order)
      done;
      Sim.Engine.run engine;
      List.rev !order = List.init n (fun i -> i + 1))

(* ------------------------------------------------------------------ *)
(* QoS properties *)

let prop_qos_never_oversubscribes =
  QCheck2.Test.make ~name:"qos: reservations never exceed capacity" ~count:60
    ~print:(fun (seed, k) -> Printf.sprintf "seed=%d ops=%d" seed k)
    QCheck2.Gen.(pair (int_range 1 5000) (int_range 1 40))
    (fun (seed, k) ->
      let g = Experiments.Harness.graph_for ~seed:(seed mod 20) ~n:20 in
      let cap = Qos.Capacity.create g ~default_capacity:10.0 in
      let rng = Sim.Rng.create seed in
      let live = ref [] in
      let ok = ref true in
      for key = 1 to k do
        (if !live <> [] && Sim.Rng.bool rng then begin
           let victim = Sim.Rng.pick rng !live in
           Qos.Admission.release cap ~key:victim;
           live := List.filter (fun x -> x <> victim) !live
         end
         else
           let members =
             Dgmc.Member.of_list
               (List.map
                  (fun x -> (x, Dgmc.Member.Both))
                  (Sim.Rng.sample rng
                     (2 + Sim.Rng.int rng 4)
                     (List.init 20 (fun i -> i))))
           in
           match
             Qos.Admission.admit cap ~key ~kind:Dgmc.Mc_id.Symmetric
               ~bandwidth:(1.0 +. Sim.Rng.float rng 5.0)
               ~members
           with
           | Ok _ -> live := key :: !live
           | Error _ -> ());
        if Qos.Capacity.max_utilization cap > 1.0 +. 1e-9 then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Guided-search properties *)

(* Small two-join race scenarios over a handful of tiny topologies —
   small enough to enumerate the FULL post-race state graph and compare
   the guided search against ground truth. *)
let search_graphs =
  [|
    ("ring 3", fun () -> Net.Topo_gen.ring 3);
    ("ring 4", fun () -> Net.Topo_gen.ring 4);
    ("line 3", fun () -> Net.Topo_gen.line 3);
    ("line 4", fun () -> Net.Topo_gen.line 4);
  |]

let search_scenario_of ?(config = Dgmc.Config.atm_lan) (gi, a, b) =
  let name, make = search_graphs.(gi mod Array.length search_graphs) in
  let graph = make () in
  let n = Net.Graph.n_nodes graph in
  let a = a mod n in
  let b = if b mod n = a then (a + 1) mod n else b mod n in
  let join switch = Check.Harness.Join { switch; mc; role = Dgmc.Member.Both } in
  ( Printf.sprintf "%s joins=%d,%d" name a b,
    { Check.Explore.graph; config; setup = []; race = [ join a; join b ] } )

let search_case_gen =
  QCheck2.Gen.(triple (int_range 0 3) (int_range 0 3) (int_range 0 3))

(* Enumerate the whole deduped state graph by replay: returns each
   distinct state's (digest, heuristic bound, successor digests,
   distance-to-nearest-terminal). *)
let enumerate_state_graph scenario =
  let seen = Hashtbl.create 64 in
  let states = ref [] in (* (digest, bound, succs) in discovery order *)
  let queue = Queue.create () in
  let h0, _ = Check.Explore.build scenario [] in
  Hashtbl.replace seen (Check.Harness.digest h0) ();
  Queue.add ([], Check.Harness.digest h0) queue;
  while not (Queue.is_empty queue) do
    let prefix, dg = Queue.pop queue in
    let h, _ = Check.Explore.build scenario prefix in
    let bound = Check.Harness.pending_count h in
    let succs =
      List.map
        (fun a ->
          let h', _ = Check.Explore.build scenario (prefix @ [ a ]) in
          let d' = Check.Harness.digest h' in
          if not (Hashtbl.mem seen d') then begin
            Hashtbl.replace seen d' ();
            Queue.add (prefix @ [ a ], d') queue
          end;
          d')
        (Check.Harness.enabled h)
    in
    states := (dg, bound, succs) :: !states
  done;
  let states = List.rev !states in
  (* Exact distance to the nearest terminal: reverse BFS, iterated to a
     fixed point (the graph is tiny). *)
  let dist = Hashtbl.create 64 in
  List.iter
    (fun (dg, _, succs) -> if succs = [] then Hashtbl.replace dist dg 0)
    states;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (dg, _, succs) ->
        List.iter
          (fun s ->
            match Hashtbl.find_opt dist s with
            | None -> ()
            | Some ds ->
              let candidate = ds + 1 in
              let better =
                match Hashtbl.find_opt dist dg with
                | None -> true
                | Some cur -> candidate < cur
              in
              if better then begin
                Hashtbl.replace dist dg candidate;
                changed := true
              end)
          succs)
      states
  done;
  List.map
    (fun (dg, bound, succs) -> (dg, bound, succs, Hashtbl.find_opt dist dg))
    states

let prop_search_heuristic_admissible_consistent =
  QCheck2.Test.make
    ~name:"search: heuristic is admissible and consistent" ~count:6
    ~print:(fun c -> fst (search_scenario_of c))
    search_case_gen
    (fun c ->
      let _, scenario = search_scenario_of c in
      let states = enumerate_state_graph scenario in
      let bound_of =
        let tbl = Hashtbl.create 64 in
        List.iter (fun (dg, b, _, _) -> Hashtbl.replace tbl dg b) states;
        Hashtbl.find tbl
      in
      List.for_all
        (fun (_, bound, succs, dist) ->
          (* Admissible: never above the true distance to a terminal
             (every state of these fault-free scenarios reaches one). *)
          (match dist with Some d -> bound <= d | None -> false)
          (* Consistent: dropping by at most one per transition. *)
          && List.for_all (fun s -> bound <= 1 + bound_of s) succs)
        states)

let prop_search_finds_iff_explore_finds =
  (* Digest-dedup soundness: the guided search reports a violation
     exactly when the exhaustive checker does — deduplication never
     drops the (only) path into a reachable violating state. *)
  QCheck2.Test.make
    ~name:"search: forward agrees with exhaustive exploration" ~count:6
    ~print:(fun (c, broken) ->
      Printf.sprintf "%s broken=%b" (fst (search_scenario_of c)) broken)
    QCheck2.Gen.(pair search_case_gen bool)
    (fun (c, broken) ->
      let config =
        if broken then
          { Dgmc.Config.atm_lan with Dgmc.Config.flag_stale_senders = false }
        else Dgmc.Config.atm_lan
      in
      let _, scenario = search_scenario_of ~config c in
      let guided = Check.Search.forward scenario in
      let exhaustive = Check.Explore.run scenario in
      (match guided.Check.Search.f_found with
       | Some _ -> true
       | None -> false)
      = (match exhaustive.Check.Explore.violation with
         | Some _ -> true
         | None -> false))

let prop_search_domains_identical =
  QCheck2.Test.make
    ~name:"search: forward at domains 1/2/4 is byte-identical" ~count:6
    ~print:(fun (c, broken) ->
      Printf.sprintf "%s broken=%b" (fst (search_scenario_of c)) broken)
    QCheck2.Gen.(pair search_case_gen bool)
    (fun (c, broken) ->
      let config =
        if broken then
          { Dgmc.Config.atm_lan with Dgmc.Config.flag_stale_senders = false }
        else Dgmc.Config.atm_lan
      in
      let _, scenario = search_scenario_of ~config c in
      let render domains =
        Format.asprintf "%a" Check.Search.pp_forward
          (Check.Search.forward ~domains scenario)
      in
      let r1 = render 1 in
      String.equal r1 (render 2) && String.equal r1 (render 4))

(* ------------------------------------------------------------------ *)
(* Link health: detector and damping properties *)

let pp_floats fs =
  "["
  ^ String.concat "; "
      (* dgmc-analyze: allow float-format — counterexample printers *)
      (List.map (Printf.sprintf "%g") fs)
  ^ "]"

let prop_phi_tolerance_monotone_in_jitter =
  (* Amplifying the deviations of the inter-arrival samples around their
     mean (same mean, larger MAD) never shrinks the phi tolerance: a
     jittery path earns at least the quiet path's timeout. *)
  QCheck2.Test.make
    ~name:"health: phi tolerance never shrinks as jitter grows" ~count:300
    ~print:(fun (intervals, c, threshold, period, grace) ->
      (* dgmc-analyze: allow float-format — counterexample printer *)
      Printf.sprintf "intervals=%s c=%g threshold=%g period=%g grace=%g"
        (pp_floats intervals) c threshold period grace)
    QCheck2.Gen.(
      tup5
        (list_size (int_range 1 8) (float_range 0.1 3.0))
        (float_range 1.0 5.0) (float_range 0.0 8.0) (float_range 0.1 2.0)
        (float_range 0.01 1.0))
    (fun (intervals, c, threshold, period, grace) ->
      let mean =
        List.fold_left ( +. ) 0.0 intervals
        /. float_of_int (List.length intervals)
      in
      let amplified = List.map (fun x -> mean +. (c *. (x -. mean))) intervals in
      Health.Detector.phi_timeout ~period ~grace ~threshold amplified
      >= Health.Detector.phi_timeout ~period ~grace ~threshold intervals)

let prop_k_missed_safe_under_k_minus_1_losses =
  (* Runs of at most k-1 consecutive missed hellos never fire a
     K_missed k detector: at every arrival instant the verdict is still
     up. *)
  QCheck2.Test.make
    ~name:"health: k-missed never fires on <= k-1 consecutive losses"
    ~count:300
    ~print:(fun (k, runs, period, grace) ->
      (* dgmc-analyze: allow float-format — counterexample printer *)
      Printf.sprintf "k=%d runs=[%s] period=%g grace=%g" k
        (String.concat "; " (List.map string_of_int runs))
        period grace)
    QCheck2.Gen.(
      int_range 1 6 >>= fun k ->
      tup4 (return k)
        (list_size (int_range 1 20) (int_range 0 (k - 1)))
        (float_range 0.1 2.0) (float_range 0.01 1.0))
    (fun (k, runs, period, grace) ->
      let det =
        Health.Detector.create (Health.Detector.K_missed k) ~period ~grace
          ~start:0.0
      in
      let now = ref 0.0 in
      List.for_all
        (fun losses ->
          (* [losses] hellos vanish, then one arrives on schedule. *)
          now := !now +. (float_of_int (losses + 1) *. period);
          let alive = not (Health.Detector.down det ~now:!now) in
          Health.Detector.note_arrival det ~now:!now;
          alive)
        runs)

let prop_damping_decays_to_reuse_in_bounded_time =
  (* However many flaps accumulated, suppression lifts exactly when the
     exponential decay reaches the reuse threshold — and that instant is
     the analytic half-life bound, so readmission is never unbounded. *)
  QCheck2.Test.make
    ~name:"health: damping decays to reuse within the half-life bound"
    ~count:300
    ~print:(fun (penalty, suppress_over, reuse, half_life, flaps) ->
      (* dgmc-analyze: allow float-format — counterexample printer *)
      Printf.sprintf
        "penalty=%g suppress=reuse+%g reuse=%g half-life=%g flaps=%d" penalty
        suppress_over reuse half_life flaps)
    QCheck2.Gen.(
      tup5 (float_range 0.1 4.0) (float_range 0.1 4.0) (float_range 0.05 2.0)
        (float_range 0.1 10.0) (int_range 1 30))
    (fun (penalty, suppress_over, reuse, half_life, flaps) ->
      let suppress = reuse +. suppress_over in
      let cfg = { Health.Damping.penalty; suppress; reuse; half_life } in
      (match Health.Damping.validate cfg with
      | Ok () -> ()
      | Error m -> failwith m);
      let d = Health.Damping.create cfg in
      (* Rapid-fire worst case: all flaps at t=0, no decay in between. *)
      for _ = 1 to flaps do
        Health.Damping.flap d ~now:0.0
      done;
      let total = float_of_int flaps *. penalty in
      if total < suppress then
        (* Never suppressed: nothing to readmit. *)
        Health.Damping.reuse_time d ~now:0.0 = None
      else
        match Health.Damping.reuse_time d ~now:0.0 with
        | None -> false
        | Some rt ->
          let bound =
            half_life *. (Float.log (total /. reuse) /. Float.log 2.0)
          in
          let eps = 1e-6 *. Float.max 1.0 rt in
          rt <= bound +. eps
          && Health.Damping.suppressed d ~now:(rt -. eps)
          && not (Health.Damping.suppressed d ~now:(rt +. eps)))

let () =
  Alcotest.run "properties"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest prop_random_scenarios_converge;
          QCheck_alcotest.to_alcotest prop_agreed_topology_is_valid;
          QCheck_alcotest.to_alcotest prop_deterministic_replay;
          Alcotest.test_case "pinned stale-image scenario (seed 961582112)"
            `Quick test_pinned_stale_image_scenario;
        ] );
      ( "timestamps",
        [
          QCheck_alcotest.to_alcotest prop_geq_reflexive;
          QCheck_alcotest.to_alcotest prop_geq_antisymmetric;
          QCheck_alcotest.to_alcotest prop_geq_transitive;
          QCheck_alcotest.to_alcotest prop_compare_total_consistent_with_geq;
          QCheck_alcotest.to_alcotest prop_merge_idempotent_commutative_associative;
          QCheck_alcotest.to_alcotest prop_merge_is_least_upper_bound;
          QCheck_alcotest.to_alcotest prop_merge_absorbs_dominated;
        ] );
      ( "trees",
        [
          QCheck_alcotest.to_alcotest prop_steiner_heuristics_valid;
          QCheck_alcotest.to_alcotest prop_steiner_within_approximation_bound;
          QCheck_alcotest.to_alcotest prop_incremental_sequence_stays_valid;
          QCheck_alcotest.to_alcotest prop_spt_matches_dijkstra;
          QCheck_alcotest.to_alcotest prop_mst_spans_and_sized;
        ] );
      ( "flooding",
        [ QCheck_alcotest.to_alcotest prop_flooding_covers_connected_graph ] );
      ( "hierarchy",
        [
          QCheck_alcotest.to_alcotest prop_hierarchy_random_churn;
          QCheck_alcotest.to_alcotest prop_hierarchy_global_tree_valid;
        ] );
      ( "dataplane",
        [
          QCheck_alcotest.to_alcotest prop_dataplane_conservation;
          QCheck_alcotest.to_alcotest prop_dataplane_fifo_order;
        ] );
      ("qos", [ QCheck_alcotest.to_alcotest prop_qos_never_oversubscribes ]);
      ( "health",
        [
          QCheck_alcotest.to_alcotest prop_phi_tolerance_monotone_in_jitter;
          QCheck_alcotest.to_alcotest prop_k_missed_safe_under_k_minus_1_losses;
          QCheck_alcotest.to_alcotest
            prop_damping_decays_to_reuse_in_bounded_time;
        ] );
      ( "search",
        [
          QCheck_alcotest.to_alcotest
            prop_search_heuristic_admissible_consistent;
          QCheck_alcotest.to_alcotest prop_search_finds_iff_explore_finds;
          QCheck_alcotest.to_alcotest prop_search_domains_identical;
        ] );
    ]
