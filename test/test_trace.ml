(* Tests for the structured causal trace (Sim.Trace): JSONL round-trip,
   ring-buffer bounds, category filtering, causal well-formedness on a
   real protocol run, and the disabled-trace zero-cost guarantee. *)

let check = Alcotest.check

(* One of each payload variant, exercising every field shape the JSONL
   writer has to carry (arrays, strings with quotes, bools, floats). *)
let sample_events : Sim.Trace.event list =
  [
    Lsa_originated
      {
        switch = 3;
        mc = "mc#1(symmetric)";
        seq = 7;
        ev = "join:both";
        proposal = true;
        stamp = [| 1; 0; 2 |];
      };
    Lsa_forwarded { src = 3; dst = 5; origin = 3; seq = 7; retransmit = true };
    Lsa_delivered { switch = 5; source = 3; origin = 3; seq = 7 };
    Lsa_dropped { src = 3; dst = 5; origin = 3; seq = 7; reason = "fault" };
    Compute_started
      { switch = 5; mc = "mc#1(symmetric)"; trigger = "receive-lsa"; r = [| 1; 1 |] };
    Proposal_made
      { switch = 5; mc = "mc#1(symmetric)"; withdrawn = false; stamp = [| 1; 1 |] };
    Topology_installed
      {
        switch = 5;
        mc = "mc#1(symmetric)";
        r = [| 1; 1 |];
        e = [| 1; 1 |];
        c = [| 1; 1 |];
        members = "{3:both, 5:both}";
        tree = "tree terminals={3, 5} edges=[3-5]";
      };
    Fault_injected { src = 0; dst = 1; fault = "reorder(+0.5)" };
    Crash { switch = 2 };
    Recover { switch = 2 };
    Resync { switch = 2; peer = 4; mc = "mc#1(symmetric)" };
    Note { category = "partition"; message = "partition {0,1} \"heals\"\n" };
  ]

let test_jsonl_roundtrip () =
  let t = Sim.Trace.create () in
  List.iteri
    (fun i ev ->
      let parent = if i = 0 then -1 else i - 1 in
      ignore (Sim.Trace.emit t ~time:(0.125 *. float_of_int i) ~parent ev))
    sample_events;
  let text = Sim.Trace.to_jsonl t in
  match Sim.Trace.of_jsonl text with
  | Error e -> Alcotest.failf "of_jsonl failed: %s" e
  | Ok a ->
    check Alcotest.int "emitted" (Sim.Trace.emitted t) a.a_emitted;
    check Alcotest.int "dropped" (Sim.Trace.dropped t) a.a_dropped;
    check Alcotest.bool "entries identical" true
      (a.a_entries = Sim.Trace.entries t)

let test_jsonl_irregular_times () =
  (* Times that need all 17 digits survive the round trip bit-for-bit. *)
  let t = Sim.Trace.create () in
  List.iter
    (fun time ->
      ignore
        (Sim.Trace.emit t ~time (Note { category = "x"; message = "m" })))
    [ 0.1; 1.0 /. 3.0; 8.5600000000000007e-05; 1e300; 0.0 ];
  match Sim.Trace.of_jsonl (Sim.Trace.to_jsonl t) with
  | Error e -> Alcotest.failf "of_jsonl failed: %s" e
  | Ok a ->
    List.iter2
      (fun (x : Sim.Trace.entry) (y : Sim.Trace.entry) ->
        if x.time <> y.time then
          Alcotest.failf "time drifted: %.20g vs %.20g" x.time y.time)
      (Sim.Trace.entries t) a.a_entries

let test_ring_buffer_cap () =
  let t = Sim.Trace.create ~cap:4 () in
  for i = 0 to 9 do
    ignore
      (Sim.Trace.emit t ~time:(float_of_int i)
         (Note { category = "n"; message = string_of_int i }))
  done;
  check Alcotest.int "retained" 4 (Sim.Trace.count t);
  check Alcotest.int "emitted counts everything" 10 (Sim.Trace.emitted t);
  check Alcotest.int "dropped" 6 (Sim.Trace.dropped t);
  check Alcotest.(list int) "newest entries, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Sim.Trace.entry) -> e.id) (Sim.Trace.entries t))

let test_category_filter () =
  let t = Sim.Trace.create ~cats:[ "keep" ] () in
  let id0 =
    Sim.Trace.emit t ~time:0.0 (Note { category = "drop"; message = "a" })
  in
  let id1 =
    Sim.Trace.emit t ~time:1.0 (Note { category = "keep"; message = "b" })
  in
  (* Ids are assigned to filtered-out events too, so parents in a
     filtered trace still name real events. *)
  check Alcotest.int "filtered event still got an id" 0 id0;
  check Alcotest.int "ids stay globally monotonic" 1 id1;
  check Alcotest.int "only matching categories retained" 1 (Sim.Trace.count t);
  check Alcotest.int "emitted counts both" 2 (Sim.Trace.emitted t)

(* Causal well-formedness on a real run: every retained entry's parent
   is -1 or an earlier, existing event — LSA floods replay as trees. *)
let test_causal_well_formed () =
  let trace = Sim.Trace.create () in
  let r =
    Experiments.Harness.bursty_run ~trace ~seed:1 ~n:12
      ~config:Dgmc.Config.atm_lan ~members:6 ()
  in
  check Alcotest.bool "run converged" true r.converged;
  let entries = Sim.Trace.entries trace in
  check Alcotest.bool "events captured" true (List.length entries > 50);
  let ids = Hashtbl.create 256 in
  List.iter
    (fun (e : Sim.Trace.entry) ->
      if e.parent >= e.id then
        Alcotest.failf "#%d has parent #%d (not earlier)" e.id e.parent;
      if e.parent >= 0 && not (Hashtbl.mem ids e.parent) then
        Alcotest.failf "#%d has unknown parent #%d" e.id e.parent;
      Hashtbl.replace ids e.id ())
    entries;
  (* The flood tree is real: deliveries hang off forwards/originations. *)
  check Alcotest.bool "some delivery has a parent" true
    (List.exists
       (fun (e : Sim.Trace.entry) ->
         match e.event with
         | Lsa_delivered _ -> e.parent >= 0
         | _ -> false)
       entries)

(* Tracing must never change the simulation it observes. *)
let test_tracing_is_transparent () =
  let untraced =
    Experiments.Harness.bursty_run ~seed:5 ~n:12 ~config:Dgmc.Config.wan
      ~members:6 ()
  in
  let traced =
    Experiments.Harness.bursty_run ~trace:(Sim.Trace.create ()) ~seed:5 ~n:12
      ~config:Dgmc.Config.wan ~members:6 ()
  in
  check Alcotest.bool "identical measurements" true (untraced = traced)

let test_disabled_recordf_zero_alloc () =
  let t = Sim.Trace.disabled in
  (* Warm up so any one-time allocation is out of the measurement, and
     measure what Gc.allocated_bytes itself allocates (it boxes floats),
     so the loop's contribution comes out exact. *)
  Sim.Trace.recordf t ~time:0.0 ~category:"c" "warmup";
  let baseline =
    let a = Gc.allocated_bytes () in
    Gc.allocated_bytes () -. a
  in
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to 1000 do
    (* A constant format on a disabled trace must allocate nothing. *)
    Sim.Trace.recordf t ~time:1.0 ~category:"c" "no event here"
  done;
  let allocated = Gc.allocated_bytes () -. a0 -. baseline in
  check Alcotest.(float 0.0) "zero bytes over 1000 disabled records" 0.0
    allocated

let test_clear () =
  let t = Sim.Trace.create ~cap:4 () in
  for i = 0 to 9 do
    ignore
      (Sim.Trace.emit t ~time:(float_of_int i)
         (Note { category = "n"; message = "x" }))
  done;
  Sim.Trace.clear t;
  check Alcotest.int "no entries" 0 (Sim.Trace.count t);
  check Alcotest.int "no ids" 0 (Sim.Trace.emitted t);
  check Alcotest.int "no drops" 0 (Sim.Trace.dropped t);
  let id = Sim.Trace.emit t ~time:0.0 (Note { category = "n"; message = "y" }) in
  check Alcotest.int "ids restart" 0 id

let test_of_jsonl_rejects_garbage () =
  (match Sim.Trace.of_jsonl "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input accepted");
  (match Sim.Trace.of_jsonl "{\"schema\":\"dgmc-trace/9\",\"emitted\":0,\"dropped\":0}\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted");
  match
    Sim.Trace.of_jsonl
      "{\"schema\":\"dgmc-trace/1\",\"emitted\":1,\"dropped\":0}\nnot json\n"
  with
  | Error msg ->
    check Alcotest.bool "error names the line" true
      (String.length msg > 0 && String.contains msg '2')
  | Ok _ -> Alcotest.fail "garbage entry accepted"

let () =
  Alcotest.run "trace"
    [
      ( "jsonl",
        [
          Alcotest.test_case "round-trip identity" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "float times exact" `Quick
            test_jsonl_irregular_times;
          Alcotest.test_case "rejects garbage" `Quick
            test_of_jsonl_rejects_garbage;
        ] );
      ( "buffer",
        [
          Alcotest.test_case "ring cap and dropped" `Quick test_ring_buffer_cap;
          Alcotest.test_case "category filter" `Quick test_category_filter;
          Alcotest.test_case "clear" `Quick test_clear;
        ] );
      ( "causality",
        [
          Alcotest.test_case "parents are earlier and exist" `Quick
            test_causal_well_formed;
          Alcotest.test_case "tracing is transparent" `Quick
            test_tracing_is_transparent;
        ] );
      ( "cost",
        [
          Alcotest.test_case "disabled recordf allocates nothing" `Quick
            test_disabled_recordf_zero_alloc;
        ] );
    ]
