(* Tests for the discrete-event simulation engine (lib/sim). *)

open Sim

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  check Alcotest.bool "is_empty" true (Heap.is_empty h);
  check Alcotest.int "length" 0 (Heap.length h);
  check Alcotest.(option int) "peek" None (Heap.peek h);
  check Alcotest.(option int) "pop" None (Heap.pop h)

let test_heap_ordering () =
  let h = Heap.of_list ~cmp:compare [ 5; 3; 8; 1; 9; 2 ] in
  check Alcotest.int "length" 6 (Heap.length h);
  check Alcotest.(option int) "peek min" (Some 1) (Heap.peek h);
  let drained = List.init 6 (fun _ -> Heap.pop_exn h) in
  check Alcotest.(list int) "sorted drain" [ 1; 2; 3; 5; 8; 9 ] drained

let test_heap_duplicates () =
  let h = Heap.of_list ~cmp:compare [ 2; 2; 1; 1; 3 ] in
  let drained = List.init 5 (fun _ -> Heap.pop_exn h) in
  check Alcotest.(list int) "duplicates kept" [ 1; 1; 2; 2; 3 ] drained

let test_heap_pop_exn_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn raises"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_custom_order () =
  (* Max-heap via inverted comparison. *)
  let h = Heap.of_list ~cmp:(fun a b -> compare b a) [ 4; 7; 1 ] in
  check Alcotest.(option int) "max first" (Some 7) (Heap.pop h)

let test_heap_to_sorted_preserves () =
  let h = Heap.of_list ~cmp:compare [ 3; 1; 2 ] in
  check Alcotest.(list int) "sorted view" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  check Alcotest.int "heap untouched" 3 (Heap.length h)

let test_heap_clear () =
  let h = Heap.of_list ~cmp:compare [ 1; 2 ] in
  Heap.clear h;
  check Alcotest.bool "cleared" true (Heap.is_empty h);
  Heap.add h 9;
  check Alcotest.(option int) "usable after clear" (Some 9) (Heap.pop h)

let test_heap_random_sort () =
  let rng = Rng.create 99 in
  for _ = 1 to 20 do
    let size = 1 + Rng.int rng 200 in
    let values = List.init size (fun _ -> Rng.int rng 1000) in
    let h = Heap.of_list ~cmp:compare values in
    let drained = List.init size (fun _ -> Heap.pop_exn h) in
    check Alcotest.(list int) "heapsort equals List.sort"
      (List.sort compare values) drained
  done

(* ------------------------------------------------------------------ *)
(* Event queue *)

let test_queue_time_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.schedule q ~time:3.0 "c");
  ignore (Event_queue.schedule q ~time:1.0 "a");
  ignore (Event_queue.schedule q ~time:2.0 "b");
  let pop () = Option.get (Event_queue.pop q) in
  check Alcotest.(pair (float 0.0) string) "first" (1.0, "a") (pop ());
  check Alcotest.(pair (float 0.0) string) "second" (2.0, "b") (pop ());
  check Alcotest.(pair (float 0.0) string) "third" (3.0, "c") (pop ())

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  ignore (Event_queue.schedule q ~time:1.0 "first");
  ignore (Event_queue.schedule q ~time:1.0 "second");
  ignore (Event_queue.schedule q ~time:1.0 "third");
  let order = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  check Alcotest.(list string) "FIFO among equal times"
    [ "first"; "second"; "third" ] order

let test_queue_cancellation () =
  let q = Event_queue.create () in
  ignore (Event_queue.schedule q ~time:1.0 "keep1");
  let h = Event_queue.schedule q ~time:2.0 "cancelled" in
  ignore (Event_queue.schedule q ~time:3.0 "keep2");
  Event_queue.cancel h;
  check Alcotest.bool "is_cancelled" true (Event_queue.is_cancelled h);
  check Alcotest.int "length excludes cancelled" 2 (Event_queue.length q);
  let order =
    List.init 2 (fun _ -> snd (Option.get (Event_queue.pop q)))
  in
  check Alcotest.(list string) "cancelled skipped" [ "keep1"; "keep2" ] order;
  check Alcotest.bool "drained" true (Event_queue.is_empty q)

let test_queue_cancel_idempotent () =
  let q = Event_queue.create () in
  let h = Event_queue.schedule q ~time:1.0 () in
  Event_queue.cancel h;
  Event_queue.cancel h;
  check Alcotest.(option (pair (float 0.0) unit)) "empty" None (Event_queue.pop q)

let test_queue_peek_time () =
  let q = Event_queue.create () in
  check Alcotest.(option (float 0.0)) "empty peek" None (Event_queue.peek_time q);
  let h = Event_queue.schedule q ~time:1.0 () in
  ignore (Event_queue.schedule q ~time:2.0 ());
  Event_queue.cancel h;
  check Alcotest.(option (float 0.0)) "peek skips cancelled" (Some 2.0)
    (Event_queue.peek_time q)

let test_queue_rejects_nan () =
  let q = Event_queue.create () in
  Alcotest.check_raises "nan time"
    (Invalid_argument "Event_queue.schedule: non-finite time") (fun () ->
      ignore (Event_queue.schedule q ~time:Float.nan ()))

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_runs_in_order () =
  let eng = Engine.create () in
  let log = ref [] in
  let note tag () = log := (tag, Engine.now eng) :: !log in
  ignore (Engine.schedule eng ~delay:2.0 (note "b"));
  ignore (Engine.schedule eng ~delay:1.0 (note "a"));
  ignore (Engine.schedule eng ~delay:3.0 (note "c"));
  Engine.run eng;
  check
    Alcotest.(list (pair string (float 0.0)))
    "execution order and times"
    [ ("a", 1.0); ("b", 2.0); ("c", 3.0) ]
    (List.rev !log)

let test_engine_schedule_during_run () =
  let eng = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule eng ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule eng ~delay:0.5 (fun () -> log := "inner" :: !log))));
  Engine.run eng;
  check Alcotest.(list string) "nested scheduling" [ "outer"; "inner" ]
    (List.rev !log);
  check Alcotest.(float 0.0) "clock at last event" 1.5 (Engine.now eng)

let test_engine_zero_delay () =
  let eng = Engine.create () in
  let hits = ref 0 in
  ignore (Engine.schedule eng ~delay:0.0 (fun () -> incr hits));
  Engine.run eng;
  check Alcotest.int "zero-delay runs" 1 !hits;
  check Alcotest.(float 0.0) "clock unchanged" 0.0 (Engine.now eng)

let test_engine_until () =
  let eng = Engine.create () in
  let hits = ref 0 in
  List.iter
    (fun d -> ignore (Engine.schedule eng ~delay:d (fun () -> incr hits)))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Engine.run ~until:2.5 eng;
  check Alcotest.int "only events before the horizon" 2 !hits;
  check Alcotest.(float 0.0) "clock parked at horizon" 2.5 (Engine.now eng);
  check Alcotest.int "later events still pending" 2 (Engine.pending eng);
  Engine.run eng;
  check Alcotest.int "rest run afterwards" 4 !hits

let test_engine_until_boundary () =
  (* An event scheduled exactly at the horizon still runs (only events
     strictly beyond it wait). *)
  let eng = Engine.create () in
  let hits = ref [] in
  List.iter
    (fun d -> ignore (Engine.schedule eng ~delay:d (fun () -> hits := d :: !hits)))
    [ 1.0; 2.0; 3.0 ];
  Engine.run ~until:2.0 eng;
  check Alcotest.(list (float 0.0)) "boundary inclusive" [ 1.0; 2.0 ]
    (List.rev !hits)

let test_engine_max_events () =
  let eng = Engine.create () in
  let hits = ref 0 in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~delay:(float_of_int i) (fun () -> incr hits))
  done;
  Engine.run ~max_events:3 eng;
  check Alcotest.int "bounded" 3 !hits

let test_engine_cancel () =
  let eng = Engine.create () in
  let hits = ref 0 in
  let h = Engine.schedule eng ~delay:1.0 (fun () -> incr hits) in
  Engine.cancel h;
  Engine.run eng;
  check Alcotest.int "cancelled action skipped" 0 !hits

let test_engine_stop () =
  let eng = Engine.create () in
  let hits = ref 0 in
  ignore
    (Engine.schedule eng ~delay:1.0 (fun () ->
         incr hits;
         Engine.stop eng));
  ignore (Engine.schedule eng ~delay:2.0 (fun () -> incr hits));
  Engine.run eng;
  check Alcotest.int "stopped after first" 1 !hits

let test_engine_step () =
  let eng = Engine.create () in
  let hits = ref 0 in
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> incr hits));
  check Alcotest.bool "step executes" true (Engine.step eng);
  check Alcotest.bool "no more" false (Engine.step eng);
  check Alcotest.int "one hit" 1 !hits

let test_engine_reset () =
  let eng = Engine.create () in
  ignore (Engine.schedule eng ~delay:5.0 (fun () -> ()));
  Engine.run eng;
  Engine.reset eng;
  check Alcotest.(float 0.0) "clock reset" 0.0 (Engine.now eng);
  check Alcotest.int "queue cleared" 0 (Engine.pending eng);
  check Alcotest.int "counter preserved" 1 (Engine.events_executed eng)

let test_engine_rejects_negative_delay () =
  let eng = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: delay must be finite and non-negative")
    (fun () -> ignore (Engine.schedule eng ~delay:(-1.0) (fun () -> ())))

let test_engine_schedule_at_past () =
  let eng = Engine.create () in
  ignore (Engine.schedule eng ~delay:2.0 (fun () -> ()));
  Engine.run eng;
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule_at: time is in the past") (fun () ->
      ignore (Engine.schedule_at eng ~time:1.0 (fun () -> ())))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  check Alcotest.(list int) "same seed, same stream" (seq a) (seq b)

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000000) in
  check Alcotest.bool "different seeds diverge" true (seq a <> seq b)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    if x < 0 || x >= 10 then Alcotest.failf "out of bounds: %d" x
  done

let test_rng_float_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    if x < 0.0 || x >= 2.5 then Alcotest.failf "out of bounds: %f" x
  done

let test_rng_range () =
  let r = Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let x = Rng.range r 3 7 in
    if x < 3 || x > 7 then Alcotest.failf "range violation: %d" x;
    seen.(x - 3) <- true
  done;
  check Alcotest.bool "all values hit" true (Array.for_all (fun b -> b) seen)

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let a = List.init 10 (fun _ -> Rng.int parent 1000000) in
  let b = List.init 10 (fun _ -> Rng.int child 1000000) in
  check Alcotest.bool "split streams differ" true (a <> b)

let test_rng_exponential_mean () =
  let r = Rng.create 11 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 4.0) > 0.2 then
    Alcotest.failf "exponential mean off: %f" mean

let test_rng_sample_distinct () =
  let r = Rng.create 13 in
  let xs = List.init 50 (fun i -> i) in
  for _ = 1 to 50 do
    let s = Rng.sample r 10 xs in
    check Alcotest.int "sample size" 10 (List.length s);
    check Alcotest.int "distinct" 10 (List.length (List.sort_uniq compare s));
    List.iter (fun x -> check Alcotest.bool "from population" true (List.mem x xs)) s
  done

let test_rng_sample_all () =
  let r = Rng.create 13 in
  let xs = [ 1; 2; 3 ] in
  check Alcotest.(list int) "k >= len returns all" xs (Rng.sample r 5 xs)

let test_rng_shuffle_permutation () =
  let r = Rng.create 17 in
  let a = Array.init 30 (fun i -> i) in
  Rng.shuffle r a;
  check
    Alcotest.(list int)
    "same multiset"
    (List.init 30 (fun i -> i))
    (List.sort compare (Array.to_list a))

let test_rng_pick_singleton () =
  let r = Rng.create 19 in
  check Alcotest.int "singleton" 42 (Rng.pick r [ 42 ])

let test_rng_invalid_args () =
  let r = Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "pick []" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick r []));
  Alcotest.check_raises "range inverted" (Invalid_argument "Rng.range: lo > hi")
    (fun () -> ignore (Rng.range r 5 3))

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_records () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~category:"a" "one";
  Trace.record t ~time:2.0 ~category:"b" "two";
  Trace.record t ~time:3.0 ~category:"a" "three";
  check Alcotest.int "count" 3 (Trace.count t);
  check Alcotest.int "by category" 2 (Trace.count_category t "a");
  let entries = Trace.entries t in
  check Alcotest.(list string) "order preserved" [ "one"; "two"; "three" ]
    (List.map (fun (e : Trace.entry) -> Trace.message e.event) entries);
  check
    Alcotest.(list int)
    "ids are monotonic from zero" [ 0; 1; 2 ]
    (List.map (fun (e : Trace.entry) -> e.id) entries)

let test_trace_disabled () =
  Trace.record Trace.disabled ~time:1.0 ~category:"x" "dropped";
  check Alcotest.int "disabled drops" 0 (Trace.count Trace.disabled);
  check Alcotest.bool "not enabled" false (Trace.enabled Trace.disabled)

let test_trace_recordf_lazy () =
  (* The formatted message must not be built when tracing is off. *)
  let expensive_calls = ref 0 in
  let expensive () =
    incr expensive_calls;
    "value"
  in
  Trace.recordf Trace.disabled ~time:0.0 ~category:"x" "%s" (expensive ());
  (* The argument is evaluated by OCaml before the call — this test
     documents that only the formatting is skipped, and the count stays
     zero in the retained log. *)
  check Alcotest.int "nothing retained" 0 (Trace.count Trace.disabled);
  check Alcotest.int "argument evaluated once" 1 !expensive_calls

let test_trace_clear () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~category:"a" "x";
  Trace.clear t;
  check Alcotest.int "cleared" 0 (Trace.count t)

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "empty heap" `Quick test_heap_empty;
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "pop_exn on empty" `Quick test_heap_pop_exn_empty;
          Alcotest.test_case "custom order" `Quick test_heap_custom_order;
          Alcotest.test_case "to_sorted_list non-destructive" `Quick
            test_heap_to_sorted_preserves;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "random heapsort" `Quick test_heap_random_sort;
        ] );
      ( "event-queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_time_order;
          Alcotest.test_case "FIFO ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "cancellation" `Quick test_queue_cancellation;
          Alcotest.test_case "cancel idempotent" `Quick test_queue_cancel_idempotent;
          Alcotest.test_case "peek_time" `Quick test_queue_peek_time;
          Alcotest.test_case "rejects nan" `Quick test_queue_rejects_nan;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "schedule during run" `Quick
            test_engine_schedule_during_run;
          Alcotest.test_case "zero delay" `Quick test_engine_zero_delay;
          Alcotest.test_case "run ~until" `Quick test_engine_until;
          Alcotest.test_case "until boundary inclusive" `Quick
            test_engine_until_boundary;
          Alcotest.test_case "run ~max_events" `Quick test_engine_max_events;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "stop" `Quick test_engine_stop;
          Alcotest.test_case "step" `Quick test_engine_step;
          Alcotest.test_case "reset" `Quick test_engine_reset;
          Alcotest.test_case "rejects negative delay" `Quick
            test_engine_rejects_negative_delay;
          Alcotest.test_case "schedule_at in the past" `Quick
            test_engine_schedule_at_past;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "range" `Quick test_rng_range;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "sample all" `Quick test_rng_sample_all;
          Alcotest.test_case "shuffle permutation" `Quick
            test_rng_shuffle_permutation;
          Alcotest.test_case "pick singleton" `Quick test_rng_pick_singleton;
          Alcotest.test_case "invalid arguments" `Quick test_rng_invalid_args;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records" `Quick test_trace_records;
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "recordf" `Quick test_trace_recordf_lazy;
          Alcotest.test_case "clear" `Quick test_trace_clear;
        ] );
    ]
