(* The parallel runner's contract: scheduling must be invisible.  Every
   figure table, fuzz counter and repro line must be identical whether a
   batch runs on 1, 2 or 4 domains — cells derive their randomness from
   their own identity, and the pool collects results by task index.
   These tests run the real workloads (Experiment 1 quick mode, a
   25-seed fuzz batch) at several domain counts and demand equality down
   to the bit. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Pool basics *)

let test_pool_map_is_list_map () =
  let xs = List.init 37 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      check
        Alcotest.(list int)
        (Printf.sprintf "map on %d domains" domains)
        (List.map f xs)
        (Runner.Pool.map ~domains f xs))
    [ 1; 2; 4; 8 ]

let test_pool_handles_more_domains_than_tasks () =
  check
    Alcotest.(list int)
    "2 tasks, 8 domains" [ 10; 20 ]
    (Runner.Pool.map ~domains:8 (fun x -> 10 * x) [ 1; 2 ])

let test_pool_empty_batch () =
  check Alcotest.(list int) "empty" [] (Runner.Pool.map ~domains:4 (fun x -> x) [])

exception Boom of int

let test_pool_propagates_exceptions () =
  List.iter
    (fun domains ->
      match
        Runner.Pool.map ~domains
          (fun x -> if x = 5 then raise (Boom x) else x)
          (List.init 12 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 5 -> ())
    [ 1; 4 ]

let test_pool_timed_counters () =
  let xs = List.init 9 (fun i -> i) in
  let timed, batch =
    Runner.Pool.map_timed ~domains:3
      (fun x ->
        (* Allocate something measurable. *)
        Array.length (Array.make (1024 * (x + 1)) 0.0))
      xs
  in
  check Alcotest.int "one stat per task" (List.length xs) (List.length timed);
  List.iteri
    (fun i (t : _ Runner.Pool.timed) ->
      check Alcotest.int "task ids follow submission order" i
        t.Runner.Pool.stats.Runner.Pool.task;
      if not (t.Runner.Pool.stats.Runner.Pool.wall_s >= 0.0) then
        Alcotest.fail "negative wall time";
      if not (t.Runner.Pool.stats.Runner.Pool.alloc_bytes > 0.0) then
        Alcotest.fail "no allocation recorded")
    timed;
  if not (batch.Runner.Pool.elapsed_s >= 0.0) then
    Alcotest.fail "negative batch elapsed";
  if not (batch.Runner.Pool.seq_estimate_s >= 0.0) then
    Alcotest.fail "negative sequential estimate";
  check Alcotest.int "domains capped at task count" 3 batch.Runner.Pool.domains

(* ------------------------------------------------------------------ *)
(* Seed derivation: pure in (master, index), independent of order *)

let drain rng k = List.init k (fun _ -> Sim.Rng.int64 rng)

let test_rng_derive_is_pure () =
  let a = drain (Sim.Rng.derive ~master:42 ~index:7) 16 in
  let b = drain (Sim.Rng.derive ~master:42 ~index:7) 16 in
  check Alcotest.(list int64) "same (master, index), same stream" a b;
  let c = drain (Sim.Rng.derive ~master:42 ~index:8) 16 in
  if a = c then Alcotest.fail "adjacent indices must give distinct streams";
  let d = drain (Sim.Rng.derive ~master:43 ~index:7) 16 in
  if a = d then Alcotest.fail "distinct masters must give distinct streams"

let test_rng_derive_order_independent () =
  (* Deriving shards in any order yields the same streams — unlike
     split, which advances shared state. *)
  let forward = List.init 6 (fun i -> drain (Sim.Rng.derive ~master:9 ~index:i) 4) in
  let backward =
    List.rev (List.init 6 (fun i -> drain (Sim.Rng.derive ~master:9 ~index:(5 - i)) 4))
  in
  check Alcotest.(list (list int64)) "order-independent" forward backward

(* ------------------------------------------------------------------ *)
(* Experiment 1 (quick mode) determinism across domain counts *)

(* Bit-exact float rendering: any divergence in value or order shows. *)
let hex f = Printf.sprintf "%h" f

let render_series (s : Experiments.Figures.series) =
  s.Experiments.Figures.label
  ^ String.concat ";"
      (List.map
         (fun (n, (sum : Metrics.Stats.summary)) ->
           Printf.sprintf "%d:%s±%s" n (hex sum.Metrics.Stats.mean)
             (hex sum.Metrics.Stats.ci95))
         s.Experiments.Figures.points)

let render_bursty (r : Experiments.Figures.bursty_result) =
  String.concat "\n"
    [
      render_series r.Experiments.Figures.proposals;
      render_series r.Experiments.Figures.floodings;
      render_series r.Experiments.Figures.convergence;
      string_of_bool r.Experiments.Figures.all_converged;
    ]

let test_fig6_quick_identical_across_domains () =
  let table domains =
    render_bursty
      (Experiments.Figures.fig6 ~domains ~sizes:[ 20; 60; 100 ]
         ~seeds:[ 1; 2; 3 ] ())
  in
  let sequential = table 1 in
  List.iter
    (fun domains ->
      check Alcotest.string
        (Printf.sprintf "fig6 quick table, %d domains" domains)
        sequential (table domains))
    [ 2; 4 ]

let test_hier_vs_flat_identical_across_domains () =
  let rows domains =
    List.map
      (fun (r : Experiments.Scale.row) ->
        Printf.sprintf "%s n=%d %s %s %s %b" r.Experiments.Scale.protocol
          r.Experiments.Scale.n
          (hex r.Experiments.Scale.floodings_per_event)
          (hex r.Experiments.Scale.messages_per_event)
          (hex r.Experiments.Scale.reach_per_event)
          r.Experiments.Scale.converged)
      (Experiments.Scale.hier_vs_flat ~domains ~seeds:[ 1; 2 ] ~areas:4
         ~per_area:6 ~events:8 ())
  in
  check Alcotest.(list string) "hierarchy rows, 1 vs 3 domains" (rows 1) (rows 3)

(* ------------------------------------------------------------------ *)
(* Fuzz batch determinism across domain counts *)

let render_outcome (o : Check.Fuzz.outcome) =
  let stat (s : Check.Fuzz.stats) =
    Printf.sprintf "ev=%d comp=%d wd=%d msg=%d ack=%d rtx=%d tx=%d drop=%d sw=%d"
      s.Check.Fuzz.s_totals.Dgmc.Protocol.events
      s.Check.Fuzz.s_totals.Dgmc.Protocol.computations
      s.Check.Fuzz.s_totals.Dgmc.Protocol.computations_withdrawn
      s.Check.Fuzz.s_totals.Dgmc.Protocol.messages
      s.Check.Fuzz.s_totals.Dgmc.Protocol.acks
      s.Check.Fuzz.s_totals.Dgmc.Protocol.retransmissions
      s.Check.Fuzz.s_faults.Faults.Plan.transmissions
      s.Check.Fuzz.s_faults.Faults.Plan.dropped s.Check.Fuzz.s_sweeps
  in
  let failure (f : Check.Fuzz.failure) =
    String.concat "|"
      (Check.Fuzz.repro_line f
      :: string_of_int f.Check.Fuzz.f_shrink_runs
      :: List.map
           (fun e -> Format.asprintf "%a" Workload.Events.pp e)
           f.Check.Fuzz.f_shrunk
      @ f.Check.Fuzz.f_problems)
  in
  String.concat "\n"
    ((string_of_int o.Check.Fuzz.o_iterations :: List.map stat o.Check.Fuzz.o_stats)
    @ List.map failure o.Check.Fuzz.o_failures)

let test_fuzz_batch_identical_across_domains () =
  (* Seed range 1020.. once included failing cases; since the
     crash-recovery fixes all pass, so the equality compares per-case
     counters (any new failure's shrunk workload and repro line would be
     compared too, via [render_outcome]). *)
  let outcome domains =
    render_outcome (Check.Fuzz.run ~domains ~seed:1020 ~iterations:25 ())
  in
  let sequential = outcome 1 in
  List.iter
    (fun domains ->
      check Alcotest.string
        (Printf.sprintf "fuzz outcome, %d domains" domains)
        sequential (outcome domains))
    [ 2; 4 ]

let test_fuzz_progress_order_is_deterministic () =
  let order domains =
    let seen = ref [] in
    ignore
      (Check.Fuzz.run ~domains ~progress:(fun s -> seen := s :: !seen) ~seed:5
         ~iterations:8 ());
    List.rev !seen
  in
  check Alcotest.(list int) "progress fires in seed order for any domains"
    (order 1) (order 4)

(* ------------------------------------------------------------------ *)
(* Pinned crash-recovery regressions *)

(* These seeds were the fuzzer's counterexamples to network-wide
   agreement before the resynchronisation fixes landed, each a distinct
   failure shape (this section previously pinned 1026 as a known-FAILING
   shrinker subject):

   - 1026, 1028, 1031: a link event flooded while part of the network was
     unreachable died at the severed links and was never re-flooded,
     leaving stale link-state images (fixed by versioned LSDB entries +
     database resynchronisation on link recovery);
   - 1039: an in-flight proposal installed a tree over a link that died
     during its computation (fixed by install-time re-validation);
   - 1113: a switch crash window swallowed floods the crashed switch
     never saw again (fixed by the crash-recovery RESYNCING exchange).

   Must-pass forever: a failure here is a protocol regression;
   [dgmc_sim --fuzz --seed N --iterations 1] replays it with the
   shrinker's minimal workload and repro line as the debugging entry
   point. *)
let pinned_recovery_seeds = [ 1026; 1028; 1031; 1039; 1113 ]

let test_pinned_recovery_seeds_agree () =
  List.iter
    (fun seed ->
      let case = Check.Fuzz.case_of_seed seed in
      match Check.Fuzz.run_case case with
      | Ok _ -> ()
      | Error problems ->
        Alcotest.failf "seed %d diverged again: %s" seed
          (String.concat "; " problems))
    pinned_recovery_seeds

let () =
  Alcotest.run "runner"
    [
      ( "pool",
        [
          Alcotest.test_case "map equals List.map" `Quick test_pool_map_is_list_map;
          Alcotest.test_case "more domains than tasks" `Quick
            test_pool_handles_more_domains_than_tasks;
          Alcotest.test_case "empty batch" `Quick test_pool_empty_batch;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_propagates_exceptions;
          Alcotest.test_case "timed counters" `Quick test_pool_timed_counters;
        ] );
      ( "rng",
        [
          Alcotest.test_case "derive is pure" `Quick test_rng_derive_is_pure;
          Alcotest.test_case "derive is order-independent" `Quick
            test_rng_derive_order_independent;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig6 quick, domains 1/2/4" `Slow
            test_fig6_quick_identical_across_domains;
          Alcotest.test_case "hier vs flat, domains 1/3" `Slow
            test_hier_vs_flat_identical_across_domains;
          Alcotest.test_case "fuzz batch, domains 1/2/4" `Slow
            test_fuzz_batch_identical_across_domains;
          Alcotest.test_case "fuzz progress order" `Quick
            test_fuzz_progress_order_is_deterministic;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "pinned crash-recovery seeds reach agreement"
            `Slow test_pinned_recovery_seeds_agree;
        ] );
    ]
