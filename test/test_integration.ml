(* End-to-end integration tests: multi-phase protocol scenarios and the
   experiment harness that regenerates the paper's figures. *)

let check = Alcotest.check

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

let assert_converged name net =
  match Dgmc.Protocol.divergence net mc with
  | [] -> ()
  | reasons -> Alcotest.failf "%s: %s" name (String.concat "; " reasons)

(* ------------------------------------------------------------------ *)
(* Multi-phase lifecycle, both regimes *)

let lifecycle_phases config seed n () =
  let graph = Experiments.Harness.graph_for ~seed ~n in
  let net = Dgmc.Protocol.create ~graph ~config () in
  let monitor = Check.Monitor.attach net in
  let rng = Sim.Rng.create (seed * 31) in
  let window =
    Float.max config.Dgmc.Config.tc
      (Lsr.Flooding.flood_diameter ~graph ~t_hop:config.Dgmc.Config.t_hop)
  in
  (* Phase 1: join burst. *)
  Workload.Events.apply_dgmc net
    (Workload.Bursty.joins rng ~n ~mc ~members:8 ~window ());
  Dgmc.Protocol.run net;
  assert_converged "join burst" net;
  (* Phase 2: conflicting churn burst. *)
  let current =
    Dgmc.Member.ids
      (Option.get (Dgmc.Switch.members (Dgmc.Protocol.switch net 0) mc))
  in
  let start = Sim.Engine.now (Dgmc.Protocol.engine net) in
  Workload.Events.apply_dgmc net
    (Workload.Bursty.churn rng ~current ~n ~mc ~joins:3 ~leaves:3 ~window ~start ());
  Dgmc.Protocol.run net;
  assert_converged "churn burst" net;
  (* Phase 3: a non-partitioning tree link fails; the topology heals. *)
  let tree = Option.get (Dgmc.Protocol.agreed_topology net mc) in
  let non_bridge =
    List.find_opt
      (fun (u, v) ->
        let g = Net.Graph.copy graph in
        Net.Graph.set_link g u v ~up:false;
        Net.Bfs.is_connected g)
      (Mctree.Tree.edges tree)
  in
  (match non_bridge with
  | Some (u, v) ->
    Dgmc.Protocol.link_down net u v;
    Dgmc.Protocol.run net;
    assert_converged "link failure" net;
    let tree' = Option.get (Dgmc.Protocol.agreed_topology net mc) in
    check Alcotest.bool "dead link evicted" false (Mctree.Tree.mem_edge tree' u v);
    Dgmc.Protocol.link_up net u v;
    Dgmc.Protocol.run net;
    assert_converged "link recovery" net
  | None -> ());
  (* Phase 4: everyone leaves; all state evaporates. *)
  let current =
    Dgmc.Member.ids
      (Option.get (Dgmc.Switch.members (Dgmc.Protocol.switch net 0) mc))
  in
  let start = Sim.Engine.now (Dgmc.Protocol.engine net) in
  List.iteri
    (fun i s ->
      Dgmc.Protocol.schedule_leave net
        ~at:(start +. (float_of_int i *. window /. 8.0))
        ~switch:s mc)
    current;
  Dgmc.Protocol.run net;
  assert_converged "drain" net;
  for i = 0 to n - 1 do
    if Dgmc.Switch.members (Dgmc.Protocol.switch net i) mc <> None then
      Alcotest.failf "zombie state at switch %d" i
  done;
  (* The runtime monitor swept the invariant catalogue on every state
     change across all four phases. *)
  Check.Monitor.check_terminal monitor;
  Check.Monitor.assert_ok monitor

(* ------------------------------------------------------------------ *)
(* Harness runs *)

let test_bursty_run_fields () =
  let r =
    Experiments.Harness.bursty_run ~seed:1 ~n:20 ~config:Dgmc.Config.atm_lan
      ~members:10 ()
  in
  check Alcotest.int "n" 20 r.n;
  check Alcotest.int "events" 10 r.events;
  check Alcotest.bool "converged" true r.converged;
  check Alcotest.bool "computations measured" true (r.computations_per_event > 0.0);
  check Alcotest.bool "floodings measured" true (r.floodings_per_event > 0.0);
  check Alcotest.bool "convergence measured" true (r.convergence_rounds <> None)

let test_bursty_run_deterministic () =
  let run () =
    Experiments.Harness.bursty_run ~seed:7 ~n:30 ~config:Dgmc.Config.wan
      ~members:10 ()
  in
  let a = run () and b = run () in
  check Alcotest.bool "identical measurements" true (a = b)

let test_poisson_run_minimal_overhead () =
  let r =
    Experiments.Harness.poisson_run ~seed:2 ~n:20 ~config:Dgmc.Config.atm_lan
      ~events:20 ~gap_rounds:50.0 ()
  in
  check Alcotest.bool "converged" true r.converged;
  (* Experiment 3's claim: sparse events are handled individually — one
     computation and one flooding each. *)
  check Alcotest.bool "~1 computation/event" true (r.computations_per_event < 1.2);
  check Alcotest.bool "~1 flooding/event" true (r.floodings_per_event < 1.2)

let test_brute_force_run_scales_with_n () =
  let r20 =
    Experiments.Harness.brute_force_bursty_run ~seed:1 ~n:20
      ~config:Dgmc.Config.atm_lan ~members:10
  in
  let r40 =
    Experiments.Harness.brute_force_bursty_run ~seed:1 ~n:40
      ~config:Dgmc.Config.atm_lan ~members:10
  in
  check Alcotest.(float 0.3) "n=20: 20 computations/event" 20.0
    r20.computations_per_event;
  check Alcotest.(float 0.3) "n=40: 40 computations/event" 40.0
    r40.computations_per_event;
  check Alcotest.bool "brute force settles" true r20.converged

let test_dgmc_beats_brute_force () =
  let dgmc =
    Experiments.Harness.bursty_run ~seed:3 ~n:60 ~config:Dgmc.Config.atm_lan
      ~members:10 ()
  in
  let brute =
    Experiments.Harness.brute_force_bursty_run ~seed:3 ~n:60
      ~config:Dgmc.Config.atm_lan ~members:10
  in
  check Alcotest.bool "an order of magnitude fewer computations" true
    (dgmc.computations_per_event *. 5.0 < brute.computations_per_event)

let test_mospf_run_grows_with_sources () =
  let run sources =
    (Experiments.Harness.mospf_bursty_run ~seed:4 ~n:40 ~config:Dgmc.Config.atm_lan
       ~members:10 ~sources)
      .computations_per_event
  in
  check Alcotest.bool "more sources, more computations" true (run 1 < run 5)

(* ------------------------------------------------------------------ *)
(* Figure sweeps (tiny parameterizations) *)

let test_fig6_shape () =
  let r = Experiments.Figures.fig6 ~sizes:[ 15; 25 ] ~seeds:[ 1; 2 ] () in
  check Alcotest.bool "all converged" true r.all_converged;
  check Alcotest.int "two points" 2 (List.length r.proposals.points);
  List.iter
    (fun (_, (s : Metrics.Stats.summary)) ->
      if s.mean <= 0.0 || s.mean > 10.0 then
        Alcotest.failf "computation-dominated overhead out of band: %f" s.mean)
    r.proposals.points

let test_fig7_shape () =
  let r = Experiments.Figures.fig7 ~sizes:[ 15; 25 ] ~seeds:[ 1; 2 ] () in
  check Alcotest.bool "all converged" true r.all_converged;
  (* WAN regime: more conflict, more computations than the ATM regime
     (the paper's Experiment 2 observation). *)
  let atm = Experiments.Figures.fig6 ~sizes:[ 15; 25 ] ~seeds:[ 1; 2 ] () in
  let mean_of (s : Experiments.Figures.series) =
    Metrics.Stats.mean (List.map (fun (_, p) -> p.Metrics.Stats.mean) s.points)
  in
  check Alcotest.bool "wan costs more per event" true
    (mean_of r.proposals > mean_of atm.proposals)

let test_fig8_shape () =
  let r = Experiments.Figures.fig8 ~sizes:[ 15 ] ~seeds:[ 1; 2 ] ~events:15 () in
  check Alcotest.bool "converged" true r.n_all_converged;
  List.iter
    (fun (_, (s : Metrics.Stats.summary)) ->
      if s.mean > 1.3 then Alcotest.failf "normal-period overhead too high: %f" s.mean)
    r.n_proposals.points

let test_compare_ordering () =
  let c =
    Experiments.Figures.compare_protocols ~sizes:[ 20; 40 ] ~seeds:[ 1 ] ()
  in
  List.iter
    (fun n ->
      let get (s : Experiments.Figures.series) =
        (List.assoc n s.points).Metrics.Stats.mean
      in
      (* The paper's ranking: D-GMC < MOSPF < brute force. *)
      if not (get c.dgmc_computations < get c.mospf_computations) then
        Alcotest.failf "dgmc should beat mospf at n=%d" n;
      if not (get c.mospf_computations < get c.brute_computations) then
        Alcotest.failf "mospf should beat brute force at n=%d" n)
    c.c_sizes

let test_cbt_comparison_shape () =
  let rows = Experiments.Figures.cbt_comparison ~seed:2 ~n:40 ~receivers:8 ~senders:4 () in
  check Alcotest.int "six configurations" 6 (List.length rows);
  let find prefix =
    List.find
      (fun (r : Experiments.Figures.cbt_row) ->
        String.length r.strategy >= String.length prefix
        && String.sub r.strategy 0 (String.length prefix) = prefix)
      rows
  in
  let per_source = find "dgmc per-source" in
  let shared = find "dgmc shared" in
  (* Traffic concentration: the shared tree loads its links close to the
     maximum; per-source trees spread the same traffic wider. *)
  check Alcotest.bool "per-source uses more links" true
    (per_source.links_used > shared.links_used);
  check Alcotest.bool "per-source spreads load" true
    (per_source.mean_link_load < shared.mean_link_load);
  (* CBT pays control messages; D-GMC's data-plane rows don't (their
     signaling is counted by the protocol benches). *)
  List.iter
    (fun (r : Experiments.Figures.cbt_row) ->
      if String.length r.strategy >= 3 && String.sub r.strategy 0 3 = "cbt" then begin
        check Alcotest.bool "cbt grafting messages counted" true
          (r.control_messages > 0);
        check Alcotest.bool "trees cost something" true (r.tree_cost > 0.0)
      end)
    rows

(* ------------------------------------------------------------------ *)
(* Extension-experiment harnesses (tiny parameterizations) *)

let test_scale_hierarchy_wins () =
  let rows = Experiments.Scale.hier_vs_flat ~seeds:[ 1 ] ~areas:4 ~per_area:8 ~events:8 () in
  match rows with
  | [ flat; hier ] ->
    check Alcotest.string "flat row" "flat" flat.protocol;
    check Alcotest.string "hier row" "hierarchical" hier.protocol;
    check Alcotest.bool "both converged" true (flat.converged && hier.converged);
    check Alcotest.bool "hierarchy reaches fewer switches" true
      (hier.reach_per_event < flat.reach_per_event);
    check Alcotest.bool "hierarchy sends fewer messages" true
      (hier.messages_per_event < flat.messages_per_event)
  | _ -> Alcotest.fail "expected two rows"

let test_extra_burst_sweep () =
  let rows = Experiments.Extra.burst_size ~seeds:[ 1; 2 ] ~n:20 ~sizes:[ 2; 6 ] () in
  check Alcotest.int "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Experiments.Extra.burst_row) ->
      check Alcotest.bool "converged" true r.all_converged;
      check Alcotest.bool "bounded overhead" true
        (r.proposals_per_event.Metrics.Stats.mean < 10.0))
    rows

let test_extra_independence_flat () =
  let rows =
    Experiments.Extra.mc_independence ~seeds:[ 1; 2 ] ~n:20 ~counts:[ 1; 3 ]
      ~members:4 ()
  in
  match rows with
  | [ one; three ] ->
    check Alcotest.bool "converged" true (one.i_all_converged && three.i_all_converged);
    (* Independence: per-MC cost does not grow with concurrency. *)
    check Alcotest.bool "per-MC computations flat" true
      (Float.abs
         (one.per_mc_computations.Metrics.Stats.mean
         -. three.per_mc_computations.Metrics.Stats.mean)
      < 0.75)
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_flooding_modes_agree () =
  let rows = Experiments.Ablation.flooding_modes ~seed:2 ~n:30 () in
  List.iter
    (fun (r : Experiments.Ablation.flooding_row) ->
      check Alcotest.bool (r.mode ^ " same outcome") true
        r.same_topology_as_hop_by_hop)
    rows

let test_ablation_incremental_converges () =
  let rows =
    Experiments.Ablation.incremental_vs_scratch ~seeds:[ 1 ] ~n:20 ~churn_events:6 ()
  in
  List.iter
    (fun (r : Experiments.Ablation.incremental_row) ->
      check Alcotest.bool (r.label ^ " converged") true r.all_converged;
      check Alcotest.bool "sane cost ratio" true
        (r.mean_cost_ratio > 0.5 && r.mean_cost_ratio < 3.0))
    rows

let () =
  Alcotest.run "integration"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "atm regime, n=20" `Quick
            (lifecycle_phases Dgmc.Config.atm_lan 1 20);
          Alcotest.test_case "atm regime, n=35" `Quick
            (lifecycle_phases Dgmc.Config.atm_lan 2 35);
          Alcotest.test_case "wan regime, n=20" `Quick
            (lifecycle_phases Dgmc.Config.wan 3 20);
          Alcotest.test_case "wan regime, n=35" `Quick
            (lifecycle_phases Dgmc.Config.wan 4 35);
        ] );
      ( "harness",
        [
          Alcotest.test_case "bursty run fields" `Quick test_bursty_run_fields;
          Alcotest.test_case "deterministic" `Quick test_bursty_run_deterministic;
          Alcotest.test_case "poisson minimal overhead" `Quick
            test_poisson_run_minimal_overhead;
          Alcotest.test_case "brute force scales with n" `Quick
            test_brute_force_run_scales_with_n;
          Alcotest.test_case "dgmc beats brute force" `Quick
            test_dgmc_beats_brute_force;
          Alcotest.test_case "mospf grows with sources" `Quick
            test_mospf_run_grows_with_sources;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig6 shape" `Slow test_fig6_shape;
          Alcotest.test_case "fig7 shape" `Slow test_fig7_shape;
          Alcotest.test_case "fig8 shape" `Slow test_fig8_shape;
          Alcotest.test_case "comparison ordering" `Slow test_compare_ordering;
          Alcotest.test_case "cbt comparison shape" `Quick
            test_cbt_comparison_shape;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "hierarchy beats flat on reach" `Quick
            test_scale_hierarchy_wins;
          Alcotest.test_case "burst sweep" `Quick test_extra_burst_sweep;
          Alcotest.test_case "per-MC independence" `Quick
            test_extra_independence_flat;
          Alcotest.test_case "flooding modes agree" `Quick
            test_ablation_flooding_modes_agree;
          Alcotest.test_case "incremental ablation" `Quick
            test_ablation_incremental_converges;
        ] );
    ]
