(* The adaptive link-health layer: detector timeouts, flap damping,
   origination pacing, configuration validation, and the full
   protocol-level loop — scripted link events as ground truth that the
   hello detectors must discover, within the configured bound and with
   zero false positives. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Detector *)

let test_k_missed_deadline () =
  let det =
    Health.Detector.create (Health.Detector.K_missed 3) ~period:1.0 ~grace:0.5
      ~start:0.0
  in
  check (Alcotest.float 1e-9) "timeout = k periods + grace" 3.5
    (Health.Detector.timeout det);
  check Alcotest.bool "not down just before the deadline" false
    (Health.Detector.down det ~now:3.49);
  check Alcotest.bool "down at the deadline" true
    (Health.Detector.down det ~now:3.5);
  (* An arrival pushes the deadline out. *)
  Health.Detector.note_arrival det ~now:2.0;
  check (Alcotest.float 1e-9) "deadline re-anchored on the arrival" 5.5
    (Health.Detector.deadline det);
  (* reset forgets accumulated silence. *)
  Health.Detector.reset det ~now:10.0;
  check Alcotest.bool "fresh after reset" false
    (Health.Detector.down det ~now:13.0)

let test_phi_adapts_to_jitter () =
  let kind = Health.Detector.Phi { window = 8; threshold = 4.0 } in
  let quiet =
    Health.Detector.create kind ~period:1.0 ~grace:0.0 ~start:0.0
  in
  let jittery =
    Health.Detector.create kind ~period:1.0 ~grace:0.0 ~start:0.0
  in
  (* Same mean inter-arrival (1.0), very different spread. *)
  List.iteri
    (fun i _ -> Health.Detector.note_arrival quiet ~now:(float_of_int (i + 1)))
    [ (); (); (); (); (); () ];
  List.iter
    (fun now -> Health.Detector.note_arrival jittery ~now)
    [ 0.2; 2.0; 2.2; 4.0; 4.2; 6.0 ];
  check Alcotest.bool "jittery path earns a longer tolerance" true
    (Health.Detector.timeout jittery > Health.Detector.timeout quiet);
  (* Both stay inside the configured clamp. *)
  let inside d =
    let t = Health.Detector.timeout d in
    t >= 2.0 && t <= Health.Detector.phi_cap_mult
  in
  check Alcotest.bool "quiet tolerance clamped" true (inside quiet);
  check Alcotest.bool "jittery tolerance clamped" true (inside jittery);
  check Alcotest.bool "tolerance never exceeds the static bound" true
    (Health.Detector.timeout jittery
    <= Health.Detector.max_timeout kind ~period:1.0 ~grace:0.0)

(* ------------------------------------------------------------------ *)
(* Damping *)

let test_damping_lifecycle () =
  let cfg =
    { Health.Damping.penalty = 1.0; suppress = 2.5; reuse = 0.5; half_life = 2.0 }
  in
  let d = Health.Damping.create cfg in
  Health.Damping.flap d ~now:0.0;
  Health.Damping.flap d ~now:0.0;
  check Alcotest.bool "two rapid flaps stay under the threshold" false
    (Health.Damping.suppressed d ~now:0.0);
  Health.Damping.flap d ~now:0.0;
  check Alcotest.bool "third flap suppresses" true
    (Health.Damping.suppressed d ~now:0.0);
  (match Health.Damping.reuse_time d ~now:0.0 with
  | None -> Alcotest.fail "suppressed link must expose a reuse time"
  | Some rt ->
    (* 3.0 decaying to 0.5 with half-life 2: t = 2·log2(6) ≈ 5.17. *)
    check (Alcotest.float 1e-6) "analytic readmission instant"
      (2.0 *. Float.log2 6.0)
      rt;
    check Alcotest.bool "still suppressed before" true
      (Health.Damping.suppressed d ~now:(rt -. 0.01));
    check Alcotest.bool "readmitted after" false
      (Health.Damping.suppressed d ~now:(rt +. 0.01)));
  check Alcotest.int "all flaps counted" 3 (Health.Damping.flaps d)

(* ------------------------------------------------------------------ *)
(* Pacer *)

let test_pacer_coalesces_and_flushes_final_state () =
  let engine = Sim.Engine.create () in
  let emitted = ref [] in
  let p =
    Health.Pacer.create ~engine ~min_interval:1.0 ~cap:4
      ~emit:(fun key v -> emitted := (key, v, Sim.Engine.now engine) :: !emitted)
      ()
  in
  (* Three rapid submissions for one key: first passes, the middle one
     parks, the last replaces it — only the final state flushes. *)
  ignore
    (Sim.Engine.schedule engine ~delay:0.0 (fun () ->
         Health.Pacer.submit p ~key:(1, 2) "down";
         Health.Pacer.submit p ~key:(1, 2) "up";
         Health.Pacer.submit p ~key:(1, 2) "down2"));
  Sim.Engine.run engine;
  let log = List.rev !emitted in
  check Alcotest.int "two emissions" 2 (List.length log);
  (match log with
  | [ ((1, 2), "down", t0); ((1, 2), "down2", t1) ] ->
    check (Alcotest.float 1e-9) "first immediately" 0.0 t0;
    check Alcotest.bool "flush after the hold-down" true (t1 >= 1.0)
  | _ -> Alcotest.fail "unexpected emission sequence");
  check Alcotest.int "intermediate state shed" 1 (Health.Pacer.coalesced p);
  check Alcotest.int "nothing parked at quiescence" 0 (Health.Pacer.pending p)

let test_pacer_cap_forces_passthrough () =
  let engine = Sim.Engine.create () in
  let emitted = ref 0 in
  let p =
    Health.Pacer.create ~engine ~min_interval:10.0 ~cap:2
      ~emit:(fun _ _ -> incr emitted)
      ()
  in
  ignore
    (Sim.Engine.schedule engine ~delay:0.0 (fun () ->
         (* Each key's first submission emits; the second parks it.  With
            cap 2, a third parked key is refused: its submission passes
            through immediately instead. *)
         List.iter
           (fun key ->
             Health.Pacer.submit p ~key "a";
             Health.Pacer.submit p ~key "b")
           [ (0, 1); (1, 2); (2, 3) ]));
  Sim.Engine.run engine;
  check Alcotest.int "one forced pass-through" 1 (Health.Pacer.forced p);
  (* 3 immediate + 1 forced + 2 flushed. *)
  check Alcotest.int "every final state emitted" 6 !emitted;
  check Alcotest.int "queue drained" 0 (Health.Pacer.pending p)

(* ------------------------------------------------------------------ *)
(* Config validation *)

let test_config_validation () =
  let ok =
    Health.Config.make ~period:0.5
      ~damping:
        {
          Health.Config.d_penalty = 1.0;
          d_suppress = 3.0;
          d_reuse = 0.75;
          d_half_life = 4.0;
        }
      ~horizon:100.0 ()
  in
  (match Health.Config.validate ok with
  | Ok () -> ()
  | Error m -> Alcotest.failf "valid config rejected: %s" m);
  let rejected t =
    match Health.Config.validate t with Ok () -> false | Error _ -> true
  in
  check Alcotest.bool "non-positive period rejected" true
    (rejected { ok with Health.Config.period = 0.0 });
  check Alcotest.bool "negative grace rejected" true
    (rejected { ok with Health.Config.grace = -1.0 });
  check Alcotest.bool "reup < 1 rejected" true
    (rejected { ok with Health.Config.reup = 0 });
  check Alcotest.bool "suppress <= reuse rejected" true
    (rejected
       {
         ok with
         Health.Config.damping =
           Some
             {
               Health.Config.d_penalty = 1.0;
               d_suppress = 0.5;
               d_reuse = 0.75;
               d_half_life = 4.0;
             };
       });
  check Alcotest.bool "non-positive horizon rejected" true
    (rejected { ok with Health.Config.horizon = 0.0 })

let test_config_abstract_mapping () =
  let hc =
    Health.Config.make ~period:0.5
      ~detector:(Health.Detector.K_missed 3)
      ~damping:
        {
          Health.Config.d_penalty = 1.0;
          d_suppress = 3.0;
          d_reuse = 0.75;
          d_half_life = 2.0;
        }
      ~horizon:100.0 ()
  in
  let a = Health.Config.abstract hc in
  check Alcotest.int "k-missed 3 detects by round 4" 4
    a.Health.Config.a_detect_rounds;
  check (Alcotest.option Alcotest.int) "ceil(suppress/penalty) flaps" (Some 3)
    a.Health.Config.a_suppress_flaps;
  check Alcotest.bool "readmission rounds positive" true
    (a.Health.Config.a_reuse_rounds > 0)

(* Satellite: the resync deadline is derived from the reliable
   transport's worst case, and a hand-tuned value below it is a
   configuration error surfaced at create time. *)
let test_resync_deadline_derived_and_validated () =
  let config = Dgmc.Config.atm_lan in
  check (Alcotest.float 1e-9) "preset deadline = give-up span + rto"
    (Lsr.Flooding.giveup_span_hops config.Dgmc.Config.reliability
    +. config.Dgmc.Config.reliability.Lsr.Flooding.rto)
    config.Dgmc.Config.resync_deadline_hops;
  (match Dgmc.Config.validate config with
  | Ok () -> ()
  | Error m -> Alcotest.failf "preset invalid: %s" m);
  let bad = { config with Dgmc.Config.resync_deadline_hops = 100.0 } in
  (match Dgmc.Config.validate bad with
  | Ok () -> Alcotest.fail "deadline below the give-up span must be rejected"
  | Error _ -> ());
  let graph = Net.Topo_gen.line 3 in
  match Dgmc.Protocol.create ~graph ~config:bad () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Protocol.create must reject an invalid config"

(* ------------------------------------------------------------------ *)
(* Protocol integration *)

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

let health_cfg ?damping ?pacing ~horizon () =
  Health.Config.make ~period:0.0005 ?damping ?pacing ~horizon ()

(* A grid conference; the harness downs a link at [t_down] as ground
   truth only, so the detectors must discover it. *)
let run_detection ?damping ?pacing () =
  let graph = Net.Topo_gen.grid ~rows:3 ~cols:3 () in
  let hc = health_cfg ?damping ?pacing ~horizon:0.08 () in
  let config = { Dgmc.Config.atm_lan with Dgmc.Config.health = Some hc } in
  let metrics = Metrics.Registry.create () in
  let net = Dgmc.Protocol.create ~graph ~config ~metrics () in
  Dgmc.Protocol.join net ~switch:0 mc Dgmc.Member.Both;
  Dgmc.Protocol.join net ~switch:8 mc Dgmc.Member.Both;
  Dgmc.Protocol.schedule_link_down net ~at:0.02 4 5;
  Dgmc.Protocol.schedule_link_up net ~at:0.05 4 5;
  Dgmc.Protocol.run net;
  (net, metrics, hc)

let test_detection_within_bound_no_false_positives () =
  let net, metrics, hc = run_detection () in
  match Dgmc.Protocol.health_summary net with
  | None -> Alcotest.fail "health layer not engaged"
  | Some h ->
    check Alcotest.bool "both endpoints detected the failure" true
      (h.Dgmc.Protocol.h_detections >= 2);
    check Alcotest.int "no false positive on a clean schedule" 0
      h.Dgmc.Protocol.h_false_positives;
    check Alcotest.bool "recoveries observed" true
      (h.Dgmc.Protocol.h_recoveries >= 2);
    check (Alcotest.float 1e-9) "summary bound matches the config"
      (Health.Config.detect_bound hc) h.Dgmc.Protocol.h_bound;
    List.iter
      (fun l ->
        check Alcotest.bool "every detection within the configured bound"
          true
          (l <= h.Dgmc.Protocol.h_bound))
      h.Dgmc.Protocol.h_latencies;
    check Alcotest.bool "the MC reconverged over the detected topology" true
      (Dgmc.Protocol.divergence net mc = []);
    (* Hello traffic is mirrored into the registry. *)
    let snap = Metrics.Registry.snapshot metrics in
    let total name =
      List.fold_left
        (fun acc ((k : Metrics.Registry.key), v) ->
          if String.equal k.Metrics.Registry.name name then acc + v else acc)
        0 snap.Metrics.Registry.counters
    in
    check Alcotest.bool "hellos counted" true (total "health.hellos_sent" > 0);
    check Alcotest.int "detections mirrored"
      h.Dgmc.Protocol.h_detections
      (total "health.detections")

let test_pacer_under_churn () =
  let net, _metrics, _hc =
    run_detection
      ~pacing:{ Health.Config.p_min_interval = 0.002; p_cap = 8 }
      ()
  in
  match Dgmc.Protocol.health_summary net with
  | None -> Alcotest.fail "health layer not engaged"
  | Some h ->
    check Alcotest.bool "paced originations flowed" true
      (h.Dgmc.Protocol.h_pacer_emitted > 0);
    check Alcotest.bool "network still converged under pacing" true
      (Dgmc.Protocol.divergence net mc = [])

let test_health_run_deterministic () =
  let digest () =
    let net, _, _ = run_detection () in
    match Dgmc.Protocol.health_summary net with
    | None -> ""
    | Some h ->
      Format.asprintf "%d|%d|%d|%d|%a" h.Dgmc.Protocol.h_detections
        h.Dgmc.Protocol.h_recoveries h.Dgmc.Protocol.h_false_positives
        h.Dgmc.Protocol.h_hellos
        (Format.pp_print_list Format.pp_print_float)
        h.Dgmc.Protocol.h_latencies
  in
  let a = digest () and b = digest () in
  check Alcotest.bool "two identical runs, identical health telemetry" true
    (a <> "" && String.equal a b)

let () =
  Alcotest.run "health"
    [
      ( "detector",
        [
          Alcotest.test_case "k-missed deadline arithmetic" `Quick
            test_k_missed_deadline;
          Alcotest.test_case "phi adapts to jitter within clamps" `Quick
            test_phi_adapts_to_jitter;
        ] );
      ( "damping",
        [
          Alcotest.test_case "suppress/reuse lifecycle" `Quick
            test_damping_lifecycle;
        ] );
      ( "pacer",
        [
          Alcotest.test_case "coalesces and flushes final state" `Quick
            test_pacer_coalesces_and_flushes_final_state;
          Alcotest.test_case "bounded queue degrades to pass-through" `Quick
            test_pacer_cap_forces_passthrough;
        ] );
      ( "config",
        [
          Alcotest.test_case "validation rejects bad fields" `Quick
            test_config_validation;
          Alcotest.test_case "abstract model mapping" `Quick
            test_config_abstract_mapping;
          Alcotest.test_case "resync deadline derived from give-up span"
            `Quick test_resync_deadline_derived_and_validated;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "detection within bound, zero false positives"
            `Quick test_detection_within_bound_no_false_positives;
          Alcotest.test_case "pacing keeps the network convergent" `Quick
            test_pacer_under_churn;
          Alcotest.test_case "byte-identical health telemetry across runs"
            `Quick test_health_run_deterministic;
        ] );
    ]
