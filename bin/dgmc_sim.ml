(* dgmc_sim — command-line driver for the D-GMC simulation study.

   Subcommands mirror the paper's evaluation artifacts (fig6/fig7/fig8,
   compare, cbt) and add single-run and topology-inspection utilities.
   `dgmc_sim <cmd> --help` documents each. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared options *)

let sizes_arg =
  let doc = "Comma-separated network sizes to sweep." in
  Arg.(value & opt (list int) Experiments.Figures.default_sizes & info [ "sizes" ] ~doc)

let seeds_arg =
  let doc = "Number of random graphs (seeds 1..N) per size." in
  Arg.(value & opt int 10 & info [ "graphs" ] ~doc)

let members_arg =
  let doc = "Members joining in each burst." in
  Arg.(value & opt int 10 & info [ "members" ] ~doc)

let seeds_of count = List.init count (fun i -> i + 1)

let ci (s : Metrics.Stats.summary) = Metrics.Table.cell_ci ~mean:s.mean ~ci:s.ci95

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV to $(docv).")

let maybe_csv path ~headers rows =
  match path with
  | Some path -> Metrics.Csv.write ~path ~headers rows
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Structured tracing (shared by run / script / fuzz) *)

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Capture a structured causal trace of the run — LSA provenance \
           (origination, per-link forwards, deliveries, drops), topology \
           computations and installs, fault injections — and write it as \
           JSON Lines (schema dgmc-trace/1) to $(docv), ready for \
           $(b,dgmc_trace).  '-' prints the human-readable timeline to \
           stdout instead.")

let trace_cats_arg =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "trace-cats" ] ~docv:"CATS"
        ~doc:
          "Comma-separated trace categories to retain (flood, forward, \
           deliver, drop, compute, proposal, install, fault, crash, \
           recover, resync, ...).  Default: all.  Filtering affects \
           retention only; event ids stay globally consistent, so causal \
           parents in a filtered trace still refer to real events.")

let make_trace ?cap file cats =
  match file with
  | None -> Sim.Trace.disabled
  | Some _ -> Sim.Trace.create ?cap ?cats ()

let finish_trace trace file =
  match file with
  | None -> ()
  | Some "-" ->
    List.iter
      (fun e -> Format.printf "%a@." Sim.Trace.pp_entry e)
      (Sim.Trace.entries trace)
  | Some path ->
    Sim.Trace.write_jsonl trace ~path;
    Printf.eprintf "trace: %d event(s) written to %s%s\n%!"
      (Sim.Trace.count trace) path
      (match Sim.Trace.dropped trace with
      | 0 -> ""
      | d -> Printf.sprintf " (%d evicted by the ring buffer)" d)

(* ------------------------------------------------------------------ *)
(* fig6 / fig7 *)

let print_bursty csv (r : Experiments.Figures.bursty_result) =
  let headers =
    [ "switches"; "proposals/event"; "floodings/event"; "convergence (rounds)" ]
  in
  let rows =
    List.map
      (fun (n, p) ->
        [
          string_of_int n;
          ci p;
          ci (List.assoc n r.floodings.points);
          ci (List.assoc n r.convergence.points);
        ])
      r.proposals.points
  in
  Metrics.Table.print ~headers rows;
  maybe_csv csv ~headers rows;
  Printf.printf "all runs converged: %b\n" r.all_converged

let fig6_cmd =
  let run sizes graphs members csv =
    print_bursty csv
      (Experiments.Figures.fig6 ~sizes ~seeds:(seeds_of graphs) ~members ())
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Experiment 1: bursty events, computation dominates.")
    Term.(const run $ sizes_arg $ seeds_arg $ members_arg $ csv_arg)

let fig7_cmd =
  let run sizes graphs members csv =
    print_bursty csv
      (Experiments.Figures.fig7 ~sizes ~seeds:(seeds_of graphs) ~members ())
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Experiment 2: bursty events, communication dominates.")
    Term.(const run $ sizes_arg $ seeds_arg $ members_arg $ csv_arg)

(* ------------------------------------------------------------------ *)
(* fig8 *)

let fig8_cmd =
  let events_arg =
    Arg.(value & opt int 40 & info [ "events" ] ~doc:"Membership events per run.")
  in
  let gap_arg =
    Arg.(
      value & opt float 50.0
      & info [ "gap" ] ~doc:"Mean inter-event gap, in protocol rounds.")
  in
  let run sizes graphs events gap_rounds csv =
    let r =
      Experiments.Figures.fig8 ~sizes ~seeds:(seeds_of graphs) ~events ~gap_rounds ()
    in
    let headers = [ "switches"; "proposals/event"; "floodings/event" ] in
    let rows =
      List.map
        (fun (n, p) ->
          [ string_of_int n; ci p; ci (List.assoc n r.n_floodings.points) ])
        r.n_proposals.points
    in
    Metrics.Table.print ~headers rows;
    maybe_csv csv ~headers rows;
    Printf.printf "all runs converged: %b\n" r.n_all_converged
  in
  Cmd.v
    (Cmd.info "fig8" ~doc:"Experiment 3: normal (sparse) traffic periods.")
    Term.(const run $ sizes_arg $ seeds_arg $ events_arg $ gap_arg $ csv_arg)

(* ------------------------------------------------------------------ *)
(* compare *)

let compare_cmd =
  let sources_arg =
    Arg.(value & opt int 3 & info [ "sources" ] ~doc:"Active MOSPF sources.")
  in
  let run sizes graphs members sources =
    let c =
      Experiments.Figures.compare_protocols ~sizes ~seeds:(seeds_of graphs)
        ~members ~sources ()
    in
    Metrics.Table.print
      ~headers:
        [ "switches"; "dgmc comp/ev"; "brute comp/ev"; "mospf comp/ev" ]
      (List.map
         (fun n ->
           let get (s : Experiments.Figures.series) = ci (List.assoc n s.points) in
           [
             string_of_int n;
             get c.dgmc_computations;
             get c.brute_computations;
             get c.mospf_computations;
           ])
         c.c_sizes)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Per-event cost: D-GMC vs brute-force LSR vs MOSPF.")
    Term.(const run $ sizes_arg $ seeds_arg $ members_arg $ sources_arg)

(* ------------------------------------------------------------------ *)
(* cbt *)

let cbt_cmd =
  let n_arg = Arg.(value & opt int 60 & info [ "n" ] ~doc:"Network size.") in
  let receivers_arg =
    Arg.(value & opt int 12 & info [ "receivers" ] ~doc:"Receiver count.")
  in
  let senders_arg =
    Arg.(value & opt int 6 & info [ "senders" ] ~doc:"Off-tree sender count.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Graph seed.") in
  let run n receivers senders seed =
    let rows = Experiments.Figures.cbt_comparison ~seed ~n ~receivers ~senders () in
    Metrics.Table.print
      ~align:[ Metrics.Table.Left ]
      ~headers:
        [
          "configuration"; "tree cost"; "max load"; "mean load"; "links";
          "mean delay"; "ctrl msgs";
        ]
      (List.map
         (fun (r : Experiments.Figures.cbt_row) ->
           [
             r.strategy;
             Metrics.Table.cell_f r.tree_cost;
             string_of_int r.max_link_load;
             Metrics.Table.cell_f r.mean_link_load;
             string_of_int r.links_used;
             Metrics.Table.cell_f r.mean_delay;
             string_of_int r.control_messages;
           ])
         rows)
  in
  Cmd.v
    (Cmd.info "cbt" ~doc:"CBT trade-off: shared-tree traffic concentration.")
    Term.(const run $ n_arg $ receivers_arg $ senders_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* hierarchy *)

let hierarchy_cmd =
  let areas_arg = Arg.(value & opt int 10 & info [ "areas" ] ~doc:"Number of areas.") in
  let per_area_arg =
    Arg.(value & opt int 20 & info [ "per-area" ] ~doc:"Switches per area.")
  in
  let events_arg =
    Arg.(value & opt int 20 & info [ "events" ] ~doc:"Membership events.")
  in
  let run areas per_area events graphs =
    let rows =
      Experiments.Scale.hier_vs_flat ~seeds:(seeds_of graphs) ~areas ~per_area
        ~events ()
    in
    Metrics.Table.print
      ~align:[ Metrics.Table.Left ]
      ~headers:
        [ "protocol"; "switches"; "floodings/ev"; "messages/ev"; "reach/ev"; "ok" ]
      (List.map
         (fun (r : Experiments.Scale.row) ->
           [
             r.protocol;
             string_of_int r.n;
             Metrics.Table.cell_f r.floodings_per_event;
             Metrics.Table.cell_f r.messages_per_event;
             Metrics.Table.cell_f r.reach_per_event;
             string_of_bool r.converged;
           ])
         rows)
  in
  Cmd.v
    (Cmd.info "hierarchy"
       ~doc:"Hierarchical vs flat D-GMC signaling scope on clustered topologies.")
    Term.(const run $ areas_arg $ per_area_arg $ events_arg $ seeds_arg)

(* ------------------------------------------------------------------ *)
(* run: one scenario, verbose *)

let run_cmd =
  let n_arg = Arg.(value & opt int 40 & info [ "n" ] ~doc:"Network size.") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let members_arg =
    Arg.(value & opt int 10 & info [ "members" ] ~doc:"Burst size.")
  in
  let regime_arg =
    Arg.(
      value
      & opt (enum [ ("atm", `Atm); ("wan", `Wan) ]) `Atm
      & info [ "regime" ] ~doc:"Timing regime: atm (Tc >> t_hop) or wan.")
  in
  let workload_arg =
    Arg.(
      value
      & opt (enum [ ("bursty", `Bursty); ("normal", `Normal) ]) `Bursty
      & info [ "workload" ] ~doc:"Event pattern.")
  in
  let run n seed members regime workload trace_file trace_cats =
    let config =
      match regime with `Atm -> Dgmc.Config.atm_lan | `Wan -> Dgmc.Config.wan
    in
    let trace = make_trace trace_file trace_cats in
    let r =
      match workload with
      | `Bursty ->
        Experiments.Harness.bursty_run ~trace ~seed ~n ~config ~members ()
      | `Normal ->
        Experiments.Harness.poisson_run ~trace ~seed ~n ~config ~events:40
          ~gap_rounds:50.0 ()
    in
    Printf.printf "switches:            %d\n" r.n;
    Printf.printf "events:              %d\n" r.events;
    Printf.printf "computations/event:  %.3f\n" r.computations_per_event;
    Printf.printf "floodings/event:     %.3f\n" r.floodings_per_event;
    Printf.printf "messages/event:      %.1f\n" r.messages_per_event;
    (match r.convergence_rounds with
    | Some c -> Printf.printf "convergence:         %.2f rounds\n" c
    | None -> Printf.printf "convergence:         n/a\n");
    Printf.printf "network-wide agreement: %b\n" r.converged;
    finish_trace trace trace_file;
    if not r.converged then exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"One D-GMC simulation run, reported in detail.")
    Term.(
      const run $ n_arg $ seed_arg $ members_arg $ regime_arg $ workload_arg
      $ trace_file_arg $ trace_cats_arg)

(* ------------------------------------------------------------------ *)
(* script: run a scenario file *)

let script_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Scenario script.")
  in
  let dot_arg =
    Arg.(
      value & flag
      & info [ "dot" ] ~doc:"Emit the final topology of the first MC as DOT.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Attach the runtime invariant monitor (Check.Monitor) and fail \
             if any D-GMC invariant is violated during the run.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Run under a fault plan, e.g. 'drop=0.3,dup=0.1,jitter=0.5' \
             (keys: drop, dup, reorder, jitter, span).  Overrides the \
             script's own 'faults' directive and switches flooding to the \
             reliable (ack + retransmit) mode.")
  in
  let fault_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ]
          ~doc:"Seed of the fault plan's random stream (default 1).")
  in
  let health_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "health" ] ~docv:"SPEC"
          ~doc:
            "Enable the link-health layer, e.g. \
             'period=0.5r,detector=k:3,damp=on' (keys as in the script \
             'health' directive; pass '' for all defaults).  Overrides the \
             script's own 'health' directive; scripted link events then \
             become ground truth the hello detectors must discover.")
  in
  let run file trace_file trace_cats dot check faults_spec fault_seed
      health_spec =
    match Workload.Script.load file with
    | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 2
    | Ok script ->
      let script =
        let faults =
          match faults_spec with
          | None -> script.Workload.Script.faults
          | Some s -> (
            match Faults.Plan.spec_of_string s with
            | Ok spec -> Some spec
            | Error msg ->
              Printf.eprintf "--faults: %s\n" msg;
              exit 2)
        in
        let fault_seed =
          Option.value ~default:script.Workload.Script.fault_seed fault_seed
        in
        { script with Workload.Script.faults; fault_seed }
      in
      let script =
        match health_spec with
        | None -> script
        | Some s -> (
          let args =
            String.split_on_char ',' s
            |> List.concat_map (String.split_on_char ' ')
            |> List.filter (fun t -> t <> "")
          in
          match Workload.Script.health_of_args ~line:0 args with
          | Error msg ->
            Printf.eprintf "--health: %s\n" msg;
            exit 2
          | Ok d ->
            let hc =
              Workload.Script.health_config
                ~graph:script.Workload.Script.graph
                ~config:script.Workload.Script.config
                ~last_event:
                  (Workload.Script.last_event_time
                     script.Workload.Script.events)
                d
            in
            (match Health.Config.validate hc with
            | Ok () -> ()
            | Error msg ->
              Printf.eprintf "--health: %s\n" msg;
              exit 2);
            { script with Workload.Script.health = Some hc })
      in
      let trace = make_trace trace_file trace_cats in
      let net = Workload.Script.build ~trace script in
      let monitor =
        if check then Some (Check.Monitor.attach ~trace net) else None
      in
      Dgmc.Protocol.run net;
      Option.iter Check.Monitor.check_terminal monitor;
      finish_trace trace trace_file;
      List.iter
        (fun mc ->
          Format.printf "%a: %s@." Dgmc.Mc_id.pp mc
            (match Dgmc.Protocol.divergence net mc with
            | [] -> "converged"
            | reasons -> "DIVERGED: " ^ String.concat "; " reasons);
          match Dgmc.Protocol.agreed_topology net mc with
          | Some tree ->
            Format.printf "  topology: %a@." Mctree.Tree.pp tree;
            if dot then
              print_string
                (Net.Dot.graph
                   ~highlight:(Mctree.Tree.edges tree)
                   ~mark:
                     (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals tree))
                   (Dgmc.Protocol.graph net))
          | None -> Format.printf "  (no agreed topology)@.")
        script.mcs;
      let t = Dgmc.Protocol.totals net in
      Format.printf
        "events %d, computations %d (%d withdrawn), MC floodings %d, link          floodings %d, messages %d@."
        t.events t.computations t.computations_withdrawn t.mc_floodings
        t.link_floodings t.messages;
      (match Dgmc.Protocol.faults net with
      | None -> ()
      | Some plan ->
        let c = Faults.Plan.counters plan in
        Format.printf "reliable flooding: %d acks, %d retransmissions@."
          t.acks t.retransmissions;
        Format.printf
          "faults: %d transmissions, %d delivered, %d dropped, %d duplicated, \
           %d reordered, %d blocked@."
          c.transmissions c.delivered c.dropped c.duplicated c.reordered
          (c.blocked_crash + c.blocked_partition));
      (match Dgmc.Protocol.health_summary net with
      | None -> ()
      | Some h ->
        let p99 =
          match h.Dgmc.Protocol.h_latencies with
          | [] -> 0.0
          | ls ->
            let n = List.length ls in
            let idx =
              min (n - 1)
                (max 0 (int_of_float (ceil (0.99 *. float_of_int n)) - 1))
            in
            List.nth ls idx
        in
        Format.printf
          "health: hellos=%d detections=%d recoveries=%d false-positives=%d \
           flaps=%d suppressed-now=%d@."
          h.h_hellos h.h_detections h.h_recoveries h.h_false_positives
          h.h_flaps h.h_suppressed;
        (* dgmc-analyze: allow float-format — human-readable summary the CI
           gate greps for within-bound, not a schema *)
        Format.printf
          "health: p99-detection=%.6f bound=%.6f within-bound=%b@." p99
          h.h_bound
          (p99 <= h.h_bound);
        if h.h_pacer_emitted + h.h_pacer_coalesced + h.h_pacer_forced > 0 then
          Format.printf
            "health: pacer emitted=%d coalesced=%d forced=%d@."
            h.h_pacer_emitted h.h_pacer_coalesced h.h_pacer_forced);
      (match monitor with
      | Some m ->
        (match Check.Monitor.violations m with
        | [] ->
          Format.printf "invariant monitor: %d sweeps, no violations@."
            (Check.Monitor.sweeps m)
        | vs ->
          Format.printf "invariant monitor: %d violation(s):@."
            (List.length vs);
          List.iter (fun v -> Format.printf "  %s@." v) vs)
      | None -> ());
      if
        List.exists
          (fun mc -> Dgmc.Protocol.divergence net mc <> [])
          script.mcs
        || not (Option.fold ~none:true ~some:Check.Monitor.ok monitor)
      then exit 1
  in
  Cmd.v
    (Cmd.info "script"
       ~doc:"Run a scenario file (see lib/workload/script.mli for the format).")
    Term.(
      const run $ file_arg $ trace_file_arg $ trace_cats_arg $ dot_arg
      $ check_arg $ faults_arg $ fault_seed_arg $ health_arg)

(* ------------------------------------------------------------------ *)
(* topo: inspect generated topologies *)

let topo_cmd =
  let n_arg = Arg.(value & opt int 40 & info [ "n" ] ~doc:"Network size.") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let dump_arg =
    Arg.(value & flag & info [ "edges" ] ~doc:"Also dump the edge list.")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of stats.")
  in
  let run n seed dump dot =
    let g = Experiments.Harness.graph_for ~seed ~n in
    if dot then print_string (Net.Dot.graph g)
    else begin
      Printf.printf "switches:     %d\n" (Net.Graph.n_nodes g);
      Printf.printf "links:        %d\n" (Net.Graph.n_edges g);
      (* dgmc-analyze: allow float-format — human-readable topology stats *)
      Printf.printf "mean degree:  %.2f\n"
        (2.0 *. float_of_int (Net.Graph.n_edges g) /. float_of_int n);
      Printf.printf "hop diameter: %d\n" (Net.Bfs.hop_diameter g);
      Printf.printf "connected:    %b\n" (Net.Bfs.is_connected g);
      if dump then Format.printf "%a@." Net.Graph.pp g
    end
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Inspect the experiment topology for a seed/size.")
    Term.(const run $ n_arg $ seed_arg $ dump_arg $ dot_arg)

(* ------------------------------------------------------------------ *)
(* fuzz: the default term, so `dgmc_sim --fuzz --seed N` works without a
   subcommand — that literal spelling is what failure reports print. *)

(* Trace capture re-runs one case with full observability: the seed
   regenerates the identical case, so the captured trace is exactly the
   failing (or passing) run.  Shrinking is skipped — the trace records
   the unshrunk case the repro line names. *)
let fuzz_traced ~seed ~iterations ~n_max ~mcs_max ~events_max ~health
    ~trace_file ~trace_cats =
  if iterations <> 1 then begin
    prerr_endline
      "dgmc_sim --fuzz --trace: tracing captures a single case; pass \
       --iterations 1 (and --seed N for the case to capture).";
    exit 2
  end;
  let trace = make_trace ~cap:200_000 (Some trace_file) trace_cats in
  let case = Check.Fuzz.case_of_seed ~n_max ~mcs_max ~events_max ~health seed in
  let outcome = Check.Fuzz.run_case ~trace case in
  finish_trace trace (Some trace_file);
  match outcome with
  | Ok _ -> Printf.printf "fuzz: seed %d passed (1 case)\n" seed
  | Error problems ->
    Printf.printf "fuzz: seed %d FAILED:\n" seed;
    List.iter (fun p -> Printf.printf "  %s\n" p) problems;
    exit 1

let fuzz_run ~seed ~iterations ~n_max ~mcs_max ~events_max ~health ~domains
    ~verbose =
  let progress s =
    if verbose then
      Format.printf "%a@."
        Check.Fuzz.pp_case
        (Check.Fuzz.case_of_seed ~n_max ~mcs_max ~events_max ~health s)
  in
  let o =
    Check.Fuzz.run ~n_max ~mcs_max ~events_max ~health ~domains ~progress
      ~seed ~iterations ()
  in
  let agg f = List.fold_left (fun a s -> a + f s) 0 o.Check.Fuzz.o_stats in
  Printf.printf "fuzz: %d/%d cases passed (seeds %d..%d)\n"
    (List.length o.o_stats) iterations seed
    (seed + iterations - 1);
  Printf.printf
    "  protocol: %d events, %d computations (%d withdrawn), %d messages, %d \
     acks, %d retransmissions\n"
    (agg (fun s -> s.Check.Fuzz.s_totals.events))
    (agg (fun s -> s.Check.Fuzz.s_totals.computations))
    (agg (fun s -> s.Check.Fuzz.s_totals.computations_withdrawn))
    (agg (fun s -> s.Check.Fuzz.s_totals.messages))
    (agg (fun s -> s.Check.Fuzz.s_totals.acks))
    (agg (fun s -> s.Check.Fuzz.s_totals.retransmissions));
  Printf.printf
    "  faults:   %d transmissions, %d dropped, %d duplicated, %d reordered, \
     %d blocked\n"
    (agg (fun s -> s.Check.Fuzz.s_faults.transmissions))
    (agg (fun s -> s.Check.Fuzz.s_faults.dropped))
    (agg (fun s -> s.Check.Fuzz.s_faults.duplicated))
    (agg (fun s -> s.Check.Fuzz.s_faults.reordered))
    (agg (fun s ->
         s.Check.Fuzz.s_faults.blocked_crash
         + s.Check.Fuzz.s_faults.blocked_partition));
  Printf.printf "  monitor:  %d invariant sweeps\n"
    (agg (fun s -> s.Check.Fuzz.s_sweeps));
  match o.o_failures with
  | [] -> ()
  | failures ->
    List.iter
      (fun f -> Format.printf "%a@." Check.Fuzz.pp_failure f)
      failures;
    exit 1

(* ------------------------------------------------------------------ *)
(* search: guided fault-scenario search (Check.Search), spelled
   `dgmc_sim --search forward|backward` — the spelling repro lines
   print, so it lives on the default term next to --fuzz. *)

let search_usage m =
  prerr_endline ("dgmc_sim --search: " ^ m);
  exit 2

(* An event list in the syntax --race/--setup accept
   (Check.Search.events_of_string), for composing repro lines. *)
let search_event_arg (ev : Check.Harness.event) =
  match ev with
  | Check.Harness.Join { switch; mc; role } ->
    Printf.sprintf "join %d mc=%d role=%s" switch mc.Dgmc.Mc_id.id
      (Dgmc.Member.role_to_string role)
  | Check.Harness.Leave { switch; mc } ->
    Printf.sprintf "leave %d mc=%d" switch mc.Dgmc.Mc_id.id
  | Check.Harness.Link_down (u, v) -> Printf.sprintf "down %d %d" u v
  | Check.Harness.Link_up (u, v) -> Printf.sprintf "up %d %d" u v
  | Check.Harness.Crash i -> Printf.sprintf "crash %d" i
  | Check.Harness.Recover i -> Printf.sprintf "recover %d" i
  | Check.Harness.Hello_round -> "hello"

let search_main ~mode ~graph_spec ~regime ~mcs_spec ~race ~setup ~target_spec
    ~max_states ~max_depth ~max_len ~inject_bug ~domains =
  let graph =
    let toks =
      String.split_on_char ' ' graph_spec |> List.filter (fun s -> s <> "")
    in
    match Workload.Script.graph_of_args ~line:0 toks with
    | Ok g -> g
    | Error m -> search_usage m
  in
  let base =
    match regime with
    | "atm" -> Dgmc.Config.atm_lan
    | "wan" -> Dgmc.Config.wan
    | r -> search_usage (Printf.sprintf "unknown regime %S (atm or wan)" r)
  in
  let config =
    match inject_bug with
    | None -> base
    | Some "stale-senders" ->
      { base with Dgmc.Config.flag_stale_senders = false }
    | Some "asymmetric-tree" ->
      { base with Dgmc.Config.span_secondary_senders = false }
    | Some b ->
      search_usage
        (Printf.sprintf
           "unknown bug %S (stale-senders or asymmetric-tree)" b)
  in
  let mcs =
    String.split_on_char ',' mcs_spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.mapi (fun i kind ->
           match kind with
           | "symmetric" -> Dgmc.Mc_id.make Symmetric (i + 1)
           | "receiver-only" -> Dgmc.Mc_id.make Receiver_only (i + 1)
           | "asymmetric" -> Dgmc.Mc_id.make Asymmetric (i + 1)
           | k -> search_usage (Printf.sprintf "unknown MC kind %S" k))
  in
  if mcs = [] then search_usage "--mcs needs at least one MC kind";
  let target =
    match Check.Search.target_of_string target_spec with
    | Ok t -> t
    | Error m -> search_usage m
  in
  let parse_events what s =
    match Check.Search.events_of_string ~mcs s with
    | Ok evs -> evs
    | Error m -> search_usage (what ^ ": " ^ m)
  in
  let setup =
    match setup with None -> [] | Some s -> parse_events "--setup" s
  in
  (* A forward repro of [events] under exactly this configuration. *)
  let repro events =
    String.concat ""
      [
        Printf.sprintf "dgmc_sim --search forward --graph %S --regime %s"
          graph_spec regime;
        (match inject_bug with
        | Some bug -> " --inject-bug " ^ bug
        | None -> "");
        Printf.sprintf " --mcs %s" mcs_spec;
        (match setup with
        | [] -> ""
        | evs ->
          Printf.sprintf " --setup %S"
            (String.concat "; " (List.map search_event_arg evs)));
        Printf.sprintf " --race %S"
          (String.concat "; " (List.map search_event_arg events));
        (match target_spec with
        | "any" -> ""
        | t -> " --target-invariant " ^ t);
      ]
  in
  match mode with
  | "forward" ->
    let race =
      match race with
      | None -> search_usage "forward search needs --race \"<events>\""
      | Some s -> parse_events "--race" s
    in
    let scenario = { Check.Explore.graph; config; setup; race } in
    let o =
      Check.Search.forward ~target ~max_states ~max_depth ~domains scenario
    in
    Format.printf "%a@." Check.Search.pp_forward o;
    (match o.f_found with
    | None -> ()
    | Some _ ->
      Printf.printf "reproduce: %s\n" (repro race);
      exit 1)
  | "backward" ->
    let o =
      Check.Search.backward ~target ~max_len ~per_candidate_states:max_states
        ~domains ~graph ~config ~setup ~mcs ()
    in
    Format.printf "%a@." Check.Search.pp_backward o;
    (match o.b_found with
    | Some (events, _) -> Printf.printf "reproduce: %s\n" (repro events)
    | None ->
      Printf.printf
        "no fault sequence up to length %d reproduces the target\n" max_len;
      exit 1)
  | m -> search_usage (Printf.sprintf "unknown mode %S (forward or backward)" m)

let default_term =
  let fuzz_arg =
    Arg.(
      value & flag
      & info [ "fuzz" ]
          ~doc:
            "Run the deterministic protocol fuzzer: random topologies, \
             workloads and fault plans from $(b,--seed), full protocol + \
             invariant monitor per case, shrinking and a replayable repro \
             line on failure.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~doc:"Base seed; iteration $(i,i) fuzzes seed + i.")
  in
  let iterations_arg =
    Arg.(value & opt int 25 & info [ "iterations" ] ~doc:"Fuzz cases to run.")
  in
  let n_max_arg =
    Arg.(
      value & opt int 20
      & info [ "n-max" ] ~doc:"Upper bound on switches per case (min 4).")
  in
  let mcs_max_arg =
    Arg.(
      value & opt int 3 & info [ "mcs-max" ] ~doc:"Upper bound on MCs per case.")
  in
  let events_max_arg =
    Arg.(
      value & opt int 20
      & info [ "events-max" ] ~doc:"Upper bound on workload events per case.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "Run fuzz cases on this many OCaml domains (Runner.Pool).  \
             Each case is a pure function of its seed, so the outcome — \
             pass/fail counts, counters, shrunk workloads, repro lines — \
             is byte-identical for any value.")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Print each generated case before running it.")
  in
  let health_band_arg =
    Arg.(
      value & flag
      & info [ "health-band" ]
          ~doc:
            "Fuzz with the opt-in link-health layer enabled (default \
             hello/detector parameters): detectors must discover every \
             scripted link change.  Same seed, same topology and \
             workload as the default band; message drops and \
             crash/partition windows are stripped so the terminal \
             ground-truth oracle stays sound.")
  in
  let search_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "search" ]
          ~doc:
            "Guided fault-scenario search.  $(b,forward): best-first from \
             $(b,--race) toward a $(b,--target-invariant) violation.  \
             $(b,backward): find a minimal fault sequence reproducing the \
             target, emitting a replayable repro line.  Byte-identical at \
             any $(b,--domains).")
  in
  let graph_arg =
    Arg.(
      value & opt string "ring 4"
      & info [ "graph" ]
          ~doc:
            "Topology for --search, in script-directive syntax (e.g. \
             $(b,\"ring 6\"), $(b,\"grid 3 3\"), $(b,\"waxman 12 seed=5\")).")
  in
  let regime_arg =
    Arg.(
      value & opt string "atm"
      & info [ "regime" ] ~doc:"Parameter regime for --search: atm or wan.")
  in
  let search_mcs_arg =
    Arg.(
      value & opt string "symmetric"
      & info [ "mcs" ]
          ~doc:
            "Comma-separated MC kinds for --search (symmetric, \
             receiver-only, asymmetric); kind $(i,i) gets id $(i,i+1).")
  in
  let race_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "race" ]
          ~doc:
            "Concurrent events for --search forward, e.g. $(b,\"join 0 \
             mc=1; join 2 mc=1\") (verbs: join, leave, down, up, crash, \
             recover).")
  in
  let setup_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "setup" ]
          ~doc:"Events injected and settled before the race (same syntax).")
  in
  let target_arg =
    Arg.(
      value & opt string "any"
      & info [ "target-invariant" ]
          ~doc:
            "Invariant to hunt: a law-name prefix, optionally \
             $(b,law\\@kind) (e.g. $(b,agreement), \
             $(b,terminals-match\\@asymmetric)); $(b,any) matches all.")
  in
  let max_states_arg =
    Arg.(
      value & opt int 50_000
      & info [ "max-states" ]
          ~doc:
            "State bound per forward search (per candidate in backward \
             mode).")
  in
  let max_depth_arg =
    Arg.(
      value & opt int 10_000
      & info [ "max-depth" ] ~doc:"Depth bound for forward search.")
  in
  let max_len_arg =
    Arg.(
      value & opt int 4
      & info [ "max-len" ]
          ~doc:"Longest fault sequence backward search considers.")
  in
  let inject_bug_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject-bug" ]
          ~doc:
            "Re-inject a historical bug for --search to rediscover: \
             $(b,stale-senders) (no recompute flag on stale senders) or \
             $(b,asymmetric-tree) (secondary senders left off the span).")
  in
  let run fuzz search seed iterations n_max mcs_max events_max domains verbose
      health_band graph_spec regime mcs_spec race setup target_spec max_states
      max_depth max_len inject_bug trace_file trace_cats =
    match search with
    | Some mode ->
      search_main ~mode ~graph_spec ~regime ~mcs_spec ~race ~setup
        ~target_spec ~max_states ~max_depth ~max_len ~inject_bug ~domains;
      `Ok ()
    | None ->
      if not fuzz then `Help (`Pager, None)
      else begin
        (match trace_file with
        | Some trace_file ->
          fuzz_traced ~seed ~iterations ~n_max ~mcs_max ~events_max
            ~health:health_band ~trace_file ~trace_cats
        | None ->
          fuzz_run ~seed ~iterations ~n_max ~mcs_max ~events_max
            ~health:health_band ~domains ~verbose);
        `Ok ()
      end
  in
  Term.(
    ret
      (const run $ fuzz_arg $ search_arg $ seed_arg $ iterations_arg
     $ n_max_arg $ mcs_max_arg $ events_max_arg $ domains_arg $ verbose_arg
     $ health_band_arg $ graph_arg $ regime_arg $ search_mcs_arg $ race_arg $ setup_arg
     $ target_arg $ max_states_arg $ max_depth_arg $ max_len_arg
     $ inject_bug_arg $ trace_file_arg $ trace_cats_arg))

let () =
  let doc = "D-GMC multipoint-connection protocol simulation study" in
  let info = Cmd.info "dgmc_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group ~default:default_term info
          [
            fig6_cmd; fig7_cmd; fig8_cmd; compare_cmd; cbt_cmd; hierarchy_cmd;
            run_cmd; script_cmd; topo_cmd;
          ]))
