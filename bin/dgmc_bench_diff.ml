(* dgmc_bench_diff — the regression gate over two BENCH_dgmc.json files.

   Compares a committed baseline against a freshly produced candidate:
   deterministic figures (cell identity sets, metric counters, histogram
   sample counts, series/sli telemetry) must match exactly, and
   per-figure + total seq_estimate_s — the domain-count-independent wall
   measure — must stay within --wall-tol.  Exit 0 on pass, 1 on
   regression, 2 on usage/parse errors, so CI can gate on it directly. *)

open Cmdliner

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let baseline_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BASELINE" ~doc:"Committed dgmc-bench/1 document.")

let candidate_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"CANDIDATE" ~doc:"Freshly produced dgmc-bench/1 document.")

let wall_tol_arg =
  Arg.(
    value & opt float 0.10
    & info [ "wall-tol" ] ~docv:"FRACTION"
        ~doc:
          "Relative tolerance on per-figure and total seq_estimate_s \
           (default 0.10 = ±10%).  Deterministic figure data is always \
           compared exactly, regardless of this setting.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:"Also write the markdown diff report to $(docv).")

let () =
  let doc = "Diff two dgmc-bench/1 documents and gate on regressions" in
  let run baseline candidate wall_tol report_path =
    if not (Float.is_finite wall_tol && wall_tol >= 0.0) then begin
      prerr_endline "dgmc_bench_diff: --wall-tol must be non-negative";
      exit 2
    end;
    match
      Report.Bench_diff.compare_strings ~wall_tol ~baseline:(read baseline)
        ~candidate:(read candidate)
    with
    | Error msg ->
      Printf.eprintf "dgmc_bench_diff: %s\n" msg;
      exit 2
    | Ok outcome ->
      let body =
        Report.Bench_diff.render ~wall_tol ~baseline_name:baseline
          ~candidate_name:candidate outcome
      in
      print_string body;
      (match report_path with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc body));
      if Report.Bench_diff.failed outcome then exit 1
  in
  let term =
    Term.(const run $ baseline_arg $ candidate_arg $ wall_tol_arg $ report_arg)
  in
  exit (Cmd.eval (Cmd.v (Cmd.info "dgmc_bench_diff" ~version:"1.0.0" ~doc) term))
