(* dgmc_analyze — source-level determinism and domain-safety analyzer.

   Walks the repo's own OCaml sources (AST-level, compiler-libs) for
   the rule catalogue in DESIGN.md §5: nondet-source, iteration-order,
   poly-compare, float-format, domain-unsafe-capture.  Findings not
   covered by a per-site suppression comment or the committed baseline
   fail the run.

   Exit status: 0 clean vs baseline, 1 new findings, 2 usage/IO
   error. *)

open Cmdliner

let default_baseline = "dgmc-analyze-baseline.json"

let paths_arg =
  Arg.(
    value
    & pos_all string [ "lib"; "bin"; "bench"; "test" ]
    & info [] ~docv:"PATH" ~doc:"Files or directories to analyze.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the dgmc-analyze/1 JSON report to $(docv) (- = stdout).")

let baseline_arg =
  Arg.(
    value
    & opt string default_baseline
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Baseline of accepted pre-existing findings (missing file = \
           empty baseline).")

let no_baseline_arg =
  Arg.(
    value & flag
    & info [ "no-baseline" ]
        ~doc:"Ignore the baseline file; every finding is new.")

let update_arg =
  Arg.(
    value & flag
    & info [ "update-baseline" ]
        ~doc:
          "Rewrite the baseline from the current findings and exit 0. \
           Use after fixing findings (to ratchet down) or to accept \
           documented leftovers.")

let rules_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"R1,R2"
        ~doc:"Run only these rules (comma-separated).")

let disable_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "disable" ] ~docv:"R1,R2" ~doc:"Skip these rules.")

let list_rules_arg =
  Arg.(
    value & flag
    & info [ "list-rules" ] ~doc:"List the rule catalogue and exit.")

let show_baselined_arg =
  Arg.(
    value & flag
    & info [ "show-baselined" ]
        ~doc:"Also print findings covered by the baseline.")

let unused_arg =
  Arg.(
    value & flag
    & info [ "unused-suppressions" ]
        ~doc:"Report suppression comments that matched no finding.")

let parse_rule_set = function
  | None -> Ok None
  | Some csv ->
    let names = String.split_on_char ',' csv in
    List.fold_left
      (fun acc n ->
        match (acc, Analysis.Rules.of_name n) with
        | Ok l, Some r -> Ok (r :: l)
        | Ok _, None -> Error (Printf.sprintf "unknown rule %S" (String.trim n))
        | (Error _ as e), _ -> e)
      (Ok []) names
    |> Result.map Option.some

let run paths json baseline_path no_baseline update rules disable list_rules
    show_baselined unused =
  if list_rules then begin
    List.iter
      (fun r ->
        Printf.printf "%-24s %s\n" (Analysis.Rules.name r)
          (Analysis.Rules.describe r))
      Analysis.Rules.all;
    exit 0
  end;
  let enabled =
    match (parse_rule_set rules, parse_rule_set disable) with
    | Error e, _ | _, Error e ->
      prerr_endline ("dgmc_analyze: " ^ e);
      exit 2
    | Ok only, Ok off ->
      fun r ->
        (match only with None -> true | Some l -> List.mem r l)
        && (match off with None -> true | Some l -> not (List.mem r l))
  in
  let baseline =
    if no_baseline || update then Analysis.Baseline.empty
    else
      match Analysis.Baseline.load baseline_path with
      | Ok b -> b
      | Error e ->
        prerr_endline ("dgmc_analyze: " ^ e);
        exit 2
  in
  let result =
    match Analysis.Driver.run ~enabled ~baseline paths with
    | r -> r
    | exception Sys_error e ->
      prerr_endline ("dgmc_analyze: " ^ e);
      exit 2
  in
  if update then begin
    let diags = List.map fst result.Analysis.Driver.diags in
    Analysis.Baseline.save baseline_path (Analysis.Baseline.of_diags diags);
    Printf.printf "wrote %s (%d findings across %d files)\n" baseline_path
      (List.length diags) result.Analysis.Driver.files_scanned;
    exit 0
  end;
  (match json with
  | Some "-" -> print_string (Analysis.Driver.render_json result)
  | Some file ->
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Analysis.Driver.render_json result));
    print_string (Analysis.Driver.render_human ~show_baselined result)
  | None -> print_string (Analysis.Driver.render_human ~show_baselined result));
  if unused then
    List.iter
      (fun (file, (s : Analysis.Suppress.t)) ->
        Printf.printf "%s:%d: unused suppression for %s\n" file
          s.Analysis.Suppress.s_line_start
          (String.concat ", " s.Analysis.Suppress.rules))
      result.Analysis.Driver.unused_suppressions;
  if Analysis.Driver.new_count result > 0 then exit 1

let () =
  let doc = "Determinism and domain-safety analysis of dgmc's own sources" in
  let info = Cmd.info "dgmc_analyze" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const run $ paths_arg $ json_arg $ baseline_arg $ no_baseline_arg
            $ update_arg $ rules_arg $ disable_arg $ list_rules_arg
            $ show_baselined_arg $ unused_arg)))
