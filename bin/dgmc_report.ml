(* dgmc_report — render a run's flight-recorder data into one report.

   Reads a dgmc-trace/1 JSONL capture, reduces it to the reconfiguration
   SLIs (convergence-latency and control-cost windows), and renders a
   markdown (default) or dgmc-report/1 JSON document.  With --bench, a
   dgmc-bench/1 file's phase-attribution table is embedded, so one
   artifact answers both "what did the protocol do" and "where did the
   time go". *)

open Cmdliner

let load_trace path =
  match Sim.Trace.read_jsonl ~path with
  | Ok a -> a
  | Error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 2

let load_bench = function
  | None -> None
  | Some path -> (
    let ic = open_in path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Sim.Json.parse contents with
    | Ok j -> Some j
    | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 2)

let trace_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE"
        ~doc:"JSONL trace (schema dgmc-trace/1) from dgmc_sim --trace.")

let bench_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "bench" ] ~docv:"FILE"
        ~doc:
          "dgmc-bench/1 document whose phase-attribution table (and raw \
           contents, in JSON mode) the report embeds.")

let gap_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "gap" ] ~docv:"SECONDS"
        ~doc:
          "Sessionization gap for SLI windows, in simulated seconds: \
           observations on one MC further apart start a new window.  \
           Defaults to 1/20 of the trace's simulated span.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the dgmc-report/1 JSON document instead of markdown.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the report to $(docv) instead of standard output.")

let () =
  let doc = "Render trace + bench telemetry into a run report" in
  let run trace_file bench_file gap json output =
    let a = load_trace trace_file in
    let bench = load_bench bench_file in
    let gap =
      match gap with
      | Some g ->
        if not (Float.is_finite g && g > 0.0) then begin
          prerr_endline "dgmc_report: --gap must be positive";
          exit 2
        end;
        g
      | None -> Report.Run_report.default_gap a.Sim.Trace.a_entries
    in
    let body =
      if json then Report.Run_report.json ?bench ~gap a
      else Report.Run_report.markdown ?bench ~gap a
    in
    match output with
    | None -> print_string body
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc body)
  in
  let term =
    Term.(const run $ trace_arg $ bench_arg $ gap_arg $ json_arg $ output_arg)
  in
  exit (Cmd.eval (Cmd.v (Cmd.info "dgmc_report" ~version:"1.0.0" ~doc) term))
