(* dgmc_trace — analyzer for dgmc-trace/1 JSONL captures.

   Reads a trace written by `dgmc_sim ... --trace FILE` and answers the
   questions a diverged or slow run raises: what caused this event
   (--chain), how did each MC's installed topology evolve
   (--convergence), where did a switch's view depart from the network's
   (--divergence), and what happened overall (--summary, the default). *)

open Cmdliner

let load path =
  match Sim.Trace.read_jsonl ~path with
  | Ok a -> a
  | Error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 2

let index entries =
  let tbl = Hashtbl.create (List.length entries * 2) in
  List.iter (fun (e : Sim.Trace.entry) -> Hashtbl.replace tbl e.id e) entries;
  tbl

(* The switch an event happened at (transmissions count at the sender). *)
let switch_of (ev : Sim.Trace.event) =
  match ev with
  | Lsa_originated { switch; _ }
  | Lsa_delivered { switch; _ }
  | Compute_started { switch; _ }
  | Proposal_made { switch; _ }
  | Topology_installed { switch; _ }
  | Crash { switch }
  | Recover { switch }
  | Resync { switch; _ }
  | Link_detected { switch; _ }
  | Link_suppressed { switch; _ } -> Some switch
  | Lsa_forwarded { src; _ } | Lsa_dropped { src; _ } | Fault_injected { src; _ }
    -> Some src
  | Note _ -> None

let installs entries =
  List.filter_map
    (fun (e : Sim.Trace.entry) ->
      match e.event with
      | Topology_installed i -> Some (e, i.switch, i.mc, i.members, i.tree)
      | _ -> None)
    entries

(* One MC "view": what agreement is defined over — member list + tree. *)
let view_of ~members ~tree = members ^ " " ^ tree

let mcs_of entries =
  List.sort_uniq compare
    (List.filter_map
       (fun (e : Sim.Trace.entry) ->
         match e.event with
         | Topology_installed { mc; _ } -> Some mc
         | _ -> None)
       entries)

(* ------------------------------------------------------------------ *)
(* summary *)

let summary (a : Sim.Trace.archive) =
  let entries = a.a_entries in
  Printf.printf "events: %d retained, %d emitted, %d evicted\n"
    (List.length entries) a.a_emitted a.a_dropped;
  (* Eviction means every figure below understates the run; say so
     loudly (stderr, so piped summaries still carry the warning). *)
  if a.a_dropped > 0 then
    Printf.eprintf
      "warning: %d event(s) were evicted from the trace ring buffer; counts \
       below understate the run (raise the trace cap)\n"
      a.a_dropped;
  (match entries with
  | [] -> ()
  | first :: _ ->
    let t_max =
      List.fold_left
        (fun m (e : Sim.Trace.entry) -> Float.max m e.time)
        first.Sim.Trace.time entries
    in
    Printf.printf "time span: [%g, %g]\n" first.Sim.Trace.time t_max);
  let count_by f =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (e : Sim.Trace.entry) ->
        match f e with
        | None -> ()
        | Some k ->
          Hashtbl.replace tbl k
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      entries;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  print_string "by category:\n";
  List.iter
    (fun (cat, n) -> Printf.printf "  %-12s %6d\n" cat n)
    (count_by (fun e -> Some (Sim.Trace.category e.Sim.Trace.event)));
  let per_switch =
    count_by (fun (e : Sim.Trace.entry) -> switch_of e.event)
  in
  if per_switch <> [] then begin
    print_string "by switch:\n";
    List.iter
      (fun (sw, n) -> Printf.printf "  switch %-4d %6d\n" sw n)
      per_switch
  end;
  List.iter
    (fun mc ->
      let is = List.filter (fun (_, _, m, _, _) -> m = mc) (installs entries) in
      let final = Hashtbl.create 8 in
      List.iter
        (fun (_, sw, _, members, tree) ->
          Hashtbl.replace final sw (view_of ~members ~tree))
        is;
      let views =
        List.sort_uniq compare
          (Hashtbl.fold (fun _ v acc -> v :: acc) final [])
      in
      Printf.printf "%s: %d install(s) at %d switch(es), %d final view(s)\n" mc
        (List.length is) (Hashtbl.length final) (List.length views))
    (mcs_of entries)

(* ------------------------------------------------------------------ *)
(* chain *)

let chain (a : Sim.Trace.archive) id =
  let tbl = index a.a_entries in
  match Hashtbl.find_opt tbl id with
  | None ->
    Printf.eprintf
      "no event #%d in this trace (%d emitted; it may have been evicted by \
       the ring buffer or filtered by --trace-cats)\n"
      id a.a_emitted;
    exit 1
  | Some e ->
    let rec ancestry (e : Sim.Trace.entry) acc =
      let acc = e :: acc in
      if e.parent < 0 then acc
      else
        match Hashtbl.find_opt tbl e.parent with
        | Some p -> ancestry p acc
        | None ->
          (* parent emitted but not retained: truncated chain *)
          Printf.printf "(ancestry truncated: #%d not retained)\n" e.parent;
          acc
    in
    List.iter
      (fun e -> Format.printf "%a@." Sim.Trace.pp_entry e)
      (ancestry e [])

(* ------------------------------------------------------------------ *)
(* convergence *)

let convergence (a : Sim.Trace.archive) =
  let entries = a.a_entries in
  List.iter
    (fun mc ->
      Printf.printf "%s:\n" mc;
      let is = List.filter (fun (_, _, m, _, _) -> m = mc) (installs entries) in
      List.iter
        (fun ((e : Sim.Trace.entry), sw, _, members, tree) ->
          Printf.printf "  [%12.6f] #%-5d switch %-3d installs %s %s\n" e.time
            e.id sw members tree)
        is;
      let final = Hashtbl.create 8 in
      List.iter
        (fun (_, sw, _, members, tree) ->
          Hashtbl.replace final sw (view_of ~members ~tree))
        is;
      let views =
        List.sort_uniq compare
          (Hashtbl.fold (fun _ v acc -> v :: acc) final [])
      in
      match views with
      | [ v ] ->
        Printf.printf "  converged: all %d installing switch(es) end on %s\n"
          (Hashtbl.length final) v
      | vs -> Printf.printf "  DIVERGED: %d distinct final views\n" (List.length vs))
    (mcs_of entries)

(* ------------------------------------------------------------------ *)
(* divergence *)

(* The final majority view per MC, then — for each switch that ends
   elsewhere — the first install event after that switch's own last
   install whose view differs from the switch's final view: the point
   where the network's history departs from the lagging switch's.  The
   causal chain of that event (--chain) names the LSA the switch missed. *)
let divergence (a : Sim.Trace.archive) =
  let entries = a.a_entries in
  let diverged = ref false in
  List.iter
    (fun mc ->
      let is = List.filter (fun (_, _, m, _, _) -> m = mc) (installs entries) in
      let final = Hashtbl.create 8 in
      (* last install per switch, in id order so later replaces earlier *)
      List.iter
        (fun ((e : Sim.Trace.entry), sw, _, members, tree) ->
          Hashtbl.replace final sw (e, view_of ~members ~tree))
        is;
      let votes = Hashtbl.create 8 in
      Hashtbl.iter
        (fun _ (_, v) ->
          Hashtbl.replace votes v
            (1 + Option.value ~default:0 (Hashtbl.find_opt votes v)))
        final;
      let majority =
        (* most switches; ties broken towards the lexicographically
           smaller view, so the report is deterministic *)
        Hashtbl.fold
          (fun v n best ->
            match best with
            | Some (bv, bn) when bn > n || (bn = n && bv <= v) -> best
            | _ -> Some (v, n))
          votes None
      in
      match majority with
      | None -> ()
      | Some (maj, _) ->
        let lagging =
          List.sort compare
            (Hashtbl.fold
               (fun sw ((e : Sim.Trace.entry), v) acc ->
                 if v = maj then acc else (sw, e, v) :: acc)
               final [])
        in
        if lagging = [] then
          Printf.printf
            "%s: no divergence — %d installing switch(es) agree on %s\n" mc
            (Hashtbl.length final) maj
        else begin
          diverged := true;
          Printf.printf "%s: majority view %s\n" mc maj;
          List.iter
            (fun (sw, (last : Sim.Trace.entry), v) ->
              Printf.printf
                "  switch %d departs: last installed %s (#%d, t=%g)\n" sw v
                last.id last.time;
              (let departure =
                 List.find_opt
                   (fun ((e : Sim.Trace.entry), _, _, members, tree) ->
                     e.id > last.id && view_of ~members ~tree <> v)
                   is
               in
               match departure with
               | Some (e, osw, _, members, tree) ->
                 Printf.printf
                   "    first event it missed: #%d t=%g switch %d installs %s \
                    %s\n"
                   e.id e.time osw members tree;
                 Printf.printf
                   "    causal ancestry: dgmc_trace --chain %d\n" e.id
               | None ->
                 Printf.printf
                   "    no later install in the trace — switch %d installed \
                    last yet differs (it departed on its own)\n"
                   sw);
              (* what this switch missed or lived through *)
              let drops =
                List.filter
                  (fun (e : Sim.Trace.entry) ->
                    match e.event with
                    | Lsa_dropped { dst; _ } -> dst = sw
                    | _ -> false)
                  entries
              in
              if drops <> [] then
                Printf.printf "    LSA copies dropped towards it: %d\n"
                  (List.length drops);
              List.iter
                (fun (e : Sim.Trace.entry) ->
                  match e.event with
                  | Crash { switch } when switch = sw ->
                    Printf.printf "    crashed at t=%g (#%d)\n" e.time e.id
                  | Recover { switch } when switch = sw ->
                    Printf.printf "    recovered at t=%g (#%d)\n" e.time e.id
                  | _ -> ())
                entries)
            lagging
        end)
    (mcs_of entries);
  if !diverged then exit 1

(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE"
        ~doc:"JSONL trace (schema dgmc-trace/1) from dgmc_sim --trace.")

let chain_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chain" ] ~docv:"ID"
        ~doc:
          "Print the causal ancestry of event $(docv), root first: the \
           chain of originations, forwards and deliveries that led to it.")

let convergence_arg =
  Arg.(
    value & flag
    & info [ "convergence" ]
        ~doc:"Per-MC install timeline: every Topology_installed event, then \
              whether the final views agree.")

let divergence_arg =
  Arg.(
    value & flag
    & info [ "divergence" ]
        ~doc:
          "Per-MC divergence report: the majority final view, each switch \
           that ends elsewhere, and the first install event it missed \
           (exit 1 when any MC diverged).")

let summary_arg =
  Arg.(
    value & flag
    & info [ "summary" ]
        ~doc:"Event counts by category and switch, per-MC install totals \
              (the default when no other mode is given).")

let () =
  let doc = "Analyze dgmc-trace/1 causal traces" in
  let run file chain_id conv div summ =
    let a = load file in
    match (chain_id, conv, div, summ) with
    | Some id, false, false, false -> chain a id
    | None, true, false, false -> convergence a
    | None, false, true, false -> divergence a
    | None, false, false, (true | false) -> summary a
    | _ ->
      prerr_endline
        "dgmc_trace: --chain, --convergence, --divergence and --summary are \
         mutually exclusive";
      exit 2
  in
  let term =
    Term.(
      const run $ file_arg $ chain_arg $ convergence_arg $ divergence_arg
      $ summary_arg)
  in
  exit (Cmd.eval (Cmd.v (Cmd.info "dgmc_trace" ~version:"1.0.0" ~doc) term))
