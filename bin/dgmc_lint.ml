(* dgmc_lint — static checks for .dgmc scenario scripts.

   Reports every problem in every given file in compiler-style
   file:line: form, or as dgmc-analyze/1 diagnostic records with
   [--json] so the same tooling consumes analyzer and lint output.
   Exit status: 0 when no file has errors (warnings allowed), 1 when
   any lint error was found, 2 when a file could not be read. *)

open Cmdliner

let files_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"FILE" ~doc:"Scenario script(s) to check.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress warnings.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the findings as dgmc-analyze/1 diagnostic records to \
           $(docv) (- = stdout).")

(* Scenario diagnostics in the record shape every dgmc linter shares
   (Analysis.Diag), so the CI gate and dashboards parse one format. *)
let diag_of ~file (d : Check.Scenario_lint.diagnostic) =
  {
    Analysis.Diag.file;
    line = d.line;
    col = 0;
    rule = "scenario-lint";
    severity =
      (match d.severity with
      | Check.Scenario_lint.Error -> Analysis.Diag.Error
      | Check.Scenario_lint.Warning -> Analysis.Diag.Warning);
    message = d.message;
  }

let render_doc ~files ~errors ~warnings diags =
  Printf.sprintf
    {|{
  "schema": "dgmc-analyze/1",
  "kind": "lint",
  "files": %d,
  "errors": %d,
  "warnings": %d,
  "findings": [
%s
  ]
}
|}
    files errors warnings
    (String.concat ",\n"
       (List.map (fun d -> "    " ^ Analysis.Diag.json d) diags))

let run files quiet json =
  let json_to_stdout = match json with Some "-" -> true | _ -> false in
  let n_errors = ref 0 in
  let n_warnings = ref 0 in
  let io_failed = ref false in
  let records = ref [] in
  List.iter
    (fun file ->
      match Check.Scenario_lint.lint_file file with
      | Error msg ->
        Printf.eprintf "%s: cannot read: %s\n" file msg;
        io_failed := true
      | Ok diags ->
        n_errors := !n_errors + Check.Scenario_lint.errors diags;
        n_warnings := !n_warnings + Check.Scenario_lint.warnings diags;
        records := !records @ List.map (diag_of ~file) diags;
        if not json_to_stdout then
          List.iter
            (fun (d : Check.Scenario_lint.diagnostic) ->
              if d.severity = Check.Scenario_lint.Error || not quiet then
                print_endline (Check.Scenario_lint.render ~file d))
            diags)
    files;
  (match json with
  | None -> ()
  | Some dst ->
    let doc =
      render_doc ~files:(List.length files) ~errors:!n_errors
        ~warnings:!n_warnings !records
    in
    if json_to_stdout then print_string doc
    else begin
      let oc = open_out dst in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc doc)
    end);
  if !io_failed then exit 2 else if !n_errors > 0 then exit 1

let () =
  let doc = "Lint D-GMC scenario scripts without running them" in
  let info = Cmd.info "dgmc_lint" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.v info Term.(const run $ files_arg $ quiet_arg $ json_arg)))
