(* dgmc_lint — static checks for .dgmc scenario scripts.

   Reports every problem in every given file in compiler-style
   file:line: form.  Exit status: 0 when no file has errors (warnings
   allowed), 1 when any lint error was found, 2 when a file could not
   be read. *)

open Cmdliner

let files_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"FILE" ~doc:"Scenario script(s) to check.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress warnings.")

let run files quiet =
  let n_errors = ref 0 in
  let io_failed = ref false in
  List.iter
    (fun file ->
      match Check.Scenario_lint.lint_file file with
      | Error msg ->
        Printf.eprintf "%s: cannot read: %s\n" file msg;
        io_failed := true
      | Ok diags ->
        n_errors := !n_errors + Check.Scenario_lint.errors diags;
        List.iter
          (fun (d : Check.Scenario_lint.diagnostic) ->
            if d.severity = Check.Scenario_lint.Error || not quiet then
              print_endline (Check.Scenario_lint.render ~file d))
          diags)
    files;
  if !io_failed then exit 2 else if !n_errors > 0 then exit 1

let () =
  let doc = "Lint D-GMC scenario scripts without running them" in
  let info = Cmd.info "dgmc_lint" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.v info Term.(const run $ files_arg $ quiet_arg)))
